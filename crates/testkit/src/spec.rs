//! Declarative scenario specs and their materialization into runnable
//! experiment points.
//!
//! A scenario is one TOML file (see `tests/scenarios/` at the repo
//! root) describing a topology, a workload mix, a fault plan, the LBs
//! under test, the seeds to sweep, and the checks to apply. The loader
//! turns it into a [`ScenarioSpec`]; [`ScenarioSpec::materialize`]
//! turns each `(lb, seed)` cell of the grid into a
//! [`hermes_bench::PointCfg`] ready for `run_point_detailed`.
//!
//! ## Schema
//!
//! ```toml
//! name = "asymmetric"            # defaults to the file stem
//! description = "one uplink cut, load vs healthy fabric"
//! pin_digests = true             # participate in golden digests
//!
//! [topology]
//! kind = "testbed"               # "testbed" | "sim_baseline"
//! cut = [[0, 3]]                 # optional [leaf, spine] cuts
//! degrade = [[0, 2, 100]]        # optional [leaf, spine, rate_mbps]
//!
//! [workload]
//! kind = "poisson"               # optional (default "poisson"); also
//!                                # "ring_allreduce" | "incast" | "elephant_mice"
//! dist = "web_search"            # poisson: "web_search" | "data_mining"
//! load = 0.5                     # vs the healthy fabric when cut/degraded
//! flows = 60
//!
//! # kind = "ring_allreduce":     barrier-stepped collective; drain_ms
//! # ranks = 8                    is the whole run's time budget
//! # steps = 3
//! # chunk_kb = 64
//!
//! # kind = "incast":             sequential N-to-1 bursts
//! # fanout = 6
//! # reply_kb = 32
//! # bursts = 5
//!
//! # kind = "elephant_mice":      open-loop bimodal mix
//! # load = 0.3
//! # flows = 60
//! # mice_kb = 20
//! # elephant_kb = 1000
//! # elephant_frac = 0.1
//!
//! [run]
//! seeds = [1, 2, 3]
//! lbs = ["hermes", "conga", "ecmp"]
//! drain_ms = 2000                # optional (default 3000)
//! letflow_timeout_us = 800       # optional LB parameter overrides
//! drill_samples = 2
//! goodput_interval_us = 1000     # optional (default 500)
//!
//! [fault]                        # optional, time-triggered
//! kind = "blackhole"             # "blackhole" | "random_drop"
//! spine = 0
//! src_leaf = 0                   # blackhole only
//! dst_leaf = 1                   # blackhole only
//! frac = 1.0                     # blackhole pair fraction | drop rate
//! start_ms = 5
//! end_ms = 120
//!
//! [invariants]
//! max_unfinished_frac = 0.0      # optional (default 1.0 = no bound)
//! incast_floor_frac = 0.25       # optional; incast scenarios only:
//!                                # per-burst goodput ≥ frac × line rate
//!
//! [[envelope]]                   # optional statistical envelopes
//! metric = "avg"                 # "avg" | "p99"
//! lb = "hermes"
//! baseline = "conga"
//! max_ratio = 1.15               # mean-over-seeds(lb) ≤ ratio × baseline
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

use hermes_bench::PointCfg;
use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg, FlowBenderCfg};
use hermes_net::{FaultPlan, LeafId, SpineId, Topology};
use hermes_runtime::Scheme;
use hermes_sim::Time;
use hermes_workload::{FlowSizeDist, IncastCfg, MixCfg, RingCfg, WorkloadKind};

use crate::toml::{self, KeyLines, Table, Value};

/// A spec-level error: what went wrong, and in which file.
#[derive(Clone, Debug)]
pub struct SpecError {
    pub file: String,
    pub msg: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.file, self.msg)
    }
}

impl std::error::Error for SpecError {}

fn serr<T>(file: &str, msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        file: file.to_string(),
        msg: msg.into(),
    })
}

/// Which base topology a scenario starts from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoKind {
    /// 2 leaves × 4 spines × 6 hosts/leaf, 1 Gbps (the paper's testbed).
    Testbed,
    /// 8 leaves × 8 spines × 16 hosts/leaf, 10 Gbps (§5 simulations).
    SimBaseline,
}

/// The topology under test: a base fabric plus static asymmetry.
#[derive(Clone, Debug)]
pub struct TopologySpec {
    pub kind: TopoKind,
    /// `(leaf, spine)` uplinks removed entirely.
    pub cuts: Vec<(LeafId, SpineId)>,
    /// `(leaf, spine, rate_mbps)` uplinks degraded in capacity.
    pub degrades: Vec<(LeafId, SpineId, u64)>,
}

impl TopologySpec {
    /// Build the (possibly asymmetric) topology, plus the healthy
    /// fabric's uplink capacity for the load-definition convention.
    pub fn build(&self) -> (Topology, u64) {
        let mut topo = match self.kind {
            TopoKind::Testbed => Topology::testbed(),
            TopoKind::SimBaseline => Topology::sim_baseline(),
        };
        let healthy_capacity = topo.total_uplink_bps();
        for (l, s) in &self.cuts {
            topo.cut_link(*l, *s);
        }
        for (l, s, mbps) in &self.degrades {
            topo.degrade_link(*l, *s, mbps * 1_000_000);
        }
        (topo, healthy_capacity)
    }

    /// Whether the fabric deviates from the healthy base.
    pub fn is_asymmetric(&self) -> bool {
        !self.cuts.is_empty() || !self.degrades.is_empty()
    }
}

/// A named LB choice with the scenario's parameter overrides applied.
#[derive(Clone, Debug)]
pub struct LbSpec {
    /// The spec-file name, used in job labels and envelope references.
    pub name: String,
    pub letflow_timeout: Time,
    pub drill_samples: usize,
}

impl LbSpec {
    /// Resolve to a runtime [`Scheme`] against a concrete topology
    /// (Hermes derives its thresholds from the fabric's RTT/rates).
    pub fn scheme(&self, topo: &Topology) -> Result<Scheme, String> {
        Ok(match self.name.as_str() {
            "ecmp" => Scheme::Ecmp,
            "drb" => Scheme::Drb,
            "presto" => Scheme::presto(),
            "presto_weighted" => Scheme::presto_weighted(),
            "flowbender" => Scheme::FlowBender(FlowBenderCfg::default()),
            "clove" => Scheme::Clove(CloveCfg::default()),
            "letflow" => Scheme::LetFlow {
                flowlet_timeout: self.letflow_timeout,
            },
            "drill" => Scheme::Drill {
                samples: self.drill_samples,
            },
            "conga" => Scheme::Conga(CongaCfg::default()),
            "hermes" => Scheme::Hermes(HermesParams::from_topology(topo)),
            other => return Err(format!("unknown lb `{other}`")),
        })
    }
}

/// A time-triggered fault window.
#[derive(Clone, Debug)]
pub enum FaultSpec {
    /// `spine` silently drops `frac` of the `src→dst` leaf pair's
    /// packets between `start` and `end`.
    Blackhole {
        spine: SpineId,
        src: LeafId,
        dst: LeafId,
        frac: f64,
        start: Time,
        end: Time,
    },
    /// `spine` drops each packet with probability `rate` in the window.
    RandomDrop {
        spine: SpineId,
        rate: f64,
        start: Time,
        end: Time,
    },
}

impl FaultSpec {
    pub fn plan(&self) -> FaultPlan {
        match *self {
            FaultSpec::Blackhole {
                spine,
                src,
                dst,
                frac,
                start,
                end,
            } => FaultPlan::new().blackhole_window(spine, src, dst, frac, start, end),
            FaultSpec::RandomDrop {
                spine,
                rate,
                start,
                end,
            } => FaultPlan::new().random_drop_window(spine, rate, start, end),
        }
    }
}

/// A statistical envelope: `mean_over_seeds(metric(lb))` must stay
/// within `max_ratio ×` the same metric of `baseline`.
#[derive(Clone, Debug)]
pub struct EnvelopeSpec {
    pub metric: Metric,
    pub lb: String,
    pub baseline: String,
    pub max_ratio: f64,
}

/// Which FCT statistic an envelope constrains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    Avg,
    P99,
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Avg => write!(f, "avg"),
            Metric::P99 => write!(f, "p99"),
        }
    }
}

/// Invariant knobs (everything else is always on).
#[derive(Clone, Debug)]
pub struct InvariantCfg {
    /// Upper bound on the unfinished-flow fraction per run. The default
    /// of 1.0 disables the bound (fault scenarios legitimately strand
    /// flows under non-adaptive LBs).
    pub max_unfinished_frac: f64,
    /// Incast scenarios only: every drained burst's aggregate goodput
    /// (`fanout × reply_bytes × 8 / drain time`) must stay at or above
    /// this fraction of the aggregator's line rate. The default leaves
    /// generous headroom for slow-start and synchronized-loss recovery.
    pub incast_floor_frac: f64,
}

impl Default for InvariantCfg {
    fn default() -> InvariantCfg {
        InvariantCfg {
            max_unfinished_frac: 1.0,
            incast_floor_frac: 0.25,
        }
    }
}

/// One fully-parsed scenario file.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    pub name: String,
    pub description: String,
    pub topology: TopologySpec,
    /// Traffic shape. For the staged-dependency kinds, `dist`, `load`
    /// and `n_flows` hold placeholder defaults and are unused.
    pub workload: WorkloadKind,
    pub dist: FlowSizeDist,
    pub load: f64,
    pub n_flows: usize,
    pub seeds: Vec<u64>,
    pub lbs: Vec<LbSpec>,
    pub drain: Time,
    pub goodput_interval: Time,
    pub fault: Option<FaultSpec>,
    pub invariants: InvariantCfg,
    pub envelopes: Vec<EnvelopeSpec>,
    /// Whether `(scenario, lb, seed)` digests are pinned as goldens.
    pub pin_digests: bool,
}

impl ScenarioSpec {
    /// The `(lb, seed)` grid, in deterministic order.
    pub fn grid(&self) -> Vec<(usize, u64)> {
        let mut out = Vec::with_capacity(self.lbs.len() * self.seeds.len());
        for (li, _) in self.lbs.iter().enumerate() {
            for &s in &self.seeds {
                out.push((li, s));
            }
        }
        out
    }

    /// Materialize one grid cell into a runnable point.
    pub fn materialize(&self, lb_idx: usize, seed: u64) -> Result<PointCfg, SpecError> {
        let lb = &self.lbs[lb_idx];
        let (topo, healthy_capacity) = self.topology.build();
        let scheme = lb.scheme(&topo).map_err(|msg| SpecError {
            file: self.name.clone(),
            msg,
        })?;
        let mut cfg = PointCfg::new(topo, scheme, self.dist.clone(), self.load)
            .workload(self.workload)
            .flows(self.n_flows)
            .seed(seed)
            .drain(self.drain);
        if self.topology.is_asymmetric() {
            // The paper's convention: offered load is defined against
            // the healthy fabric even when the fabric under test lost
            // capacity.
            cfg = cfg.capacity(healthy_capacity);
        }
        if let Some(fault) = &self.fault {
            cfg = cfg.fault(fault.plan());
        }
        Ok(cfg)
    }

    /// Key for a golden-digest entry.
    pub fn digest_key(&self, lb_idx: usize, seed: u64) -> String {
        format!("{}/{}/{}", self.name, self.lbs[lb_idx].name, seed)
    }
}

// ---- TOML → spec ----------------------------------------------------

fn get<'a>(t: &'a Table, key: &str) -> Option<&'a Value> {
    t.get(key)
}

fn req_str(t: &Table, key: &str, file: &str) -> Result<String, SpecError> {
    match get(t, key).and_then(Value::as_str) {
        Some(s) => Ok(s.to_string()),
        None => serr(file, format!("missing string `{key}`")),
    }
}

fn req_float(t: &Table, key: &str, file: &str) -> Result<f64, SpecError> {
    match get(t, key).and_then(Value::as_float) {
        Some(f) => Ok(f),
        None => serr(file, format!("missing number `{key}`")),
    }
}

fn req_usize(t: &Table, key: &str, file: &str) -> Result<usize, SpecError> {
    let Some(i) = get(t, key).and_then(Value::as_int) else {
        return serr(file, format!("missing integer `{key}`"));
    };
    usize::try_from(i).map_err(|_| SpecError {
        file: file.to_string(),
        msg: format!("`{key}` must be non-negative"),
    })
}

fn opt_int(t: &Table, key: &str, default: i64) -> i64 {
    get(t, key).and_then(Value::as_int).unwrap_or(default)
}

fn time_ms(t: &Table, key: &str, file: &str) -> Result<Time, SpecError> {
    let i = match get(t, key).and_then(Value::as_int) {
        Some(i) if i >= 0 => i,
        _ => return serr(file, format!("missing non-negative integer `{key}`")),
    };
    Ok(Time::from_ms(i as u64))
}

fn pair_list(v: &Value, file: &str, key: &str) -> Result<Vec<(u16, u16)>, SpecError> {
    let mut out = Vec::new();
    let Some(items) = v.as_array() else {
        return serr(file, format!("`{key}` must be an array of pairs"));
    };
    for item in items {
        let pair = item.as_array().unwrap_or(&[]);
        let (Some(a), Some(b)) = (
            pair.first().and_then(Value::as_int),
            pair.get(1).and_then(Value::as_int),
        ) else {
            return serr(file, format!("`{key}` entries must be [leaf, spine]"));
        };
        out.push((a as u16, b as u16));
    }
    Ok(out)
}

/// Per-section allowed key sets. A key outside these is a hard error
/// with the offending line — typos (`flws`) must not silently become
/// defaults.
const TOP_KEYS: &[&str] = &[
    "name",
    "description",
    "pin_digests",
    "topology",
    "workload",
    "run",
    "fault",
    "invariants",
    "envelope",
];
const TOPOLOGY_KEYS: &[&str] = &["kind", "cut", "degrade"];
const RUN_KEYS: &[&str] = &[
    "seeds",
    "lbs",
    "drain_ms",
    "letflow_timeout_us",
    "drill_samples",
    "goodput_interval_us",
];
const FAULT_KEYS: &[&str] = &[
    "kind", "spine", "src_leaf", "dst_leaf", "frac", "start_ms", "end_ms",
];
const INVARIANT_KEYS: &[&str] = &["max_unfinished_frac", "incast_floor_frac"];
const ENVELOPE_KEYS: &[&str] = &["metric", "lb", "baseline", "max_ratio"];

/// `[workload]` keys allowed for each `kind`.
fn workload_keys(kind: &str) -> &'static [&'static str] {
    match kind {
        "ring_allreduce" => &["kind", "ranks", "steps", "chunk_kb"],
        "incast" => &["kind", "fanout", "reply_kb", "bursts"],
        "elephant_mice" => &[
            "kind",
            "load",
            "flows",
            "mice_kb",
            "elephant_kb",
            "elephant_frac",
        ],
        // "poisson" and anything unknown (the kind itself errors later).
        _ => &["kind", "dist", "load", "flows"],
    }
}

/// Reject unknown keys anywhere in the document, naming the source
/// line. `wl_kind` selects which `[workload]` keys are legal.
fn validate_keys(key_lines: &KeyLines, wl_kind: &str, file: &str) -> Result<(), SpecError> {
    let unknown = |line: usize, key: &str, section: &str| -> Result<(), SpecError> {
        serr(
            file,
            format!("line {line}: unknown key `{key}` in {section}"),
        )
    };
    for (path, &line) in key_lines {
        let segs: Vec<&str> = path.split('.').collect();
        if !TOP_KEYS.contains(&segs[0]) {
            return serr(
                file,
                format!("line {line}: unknown top-level key `{}`", segs[0]),
            );
        }
        if segs.len() == 1 {
            continue;
        }
        let (section, allowed, key_idx) = match segs[0] {
            "topology" => ("[topology]", TOPOLOGY_KEYS, 1),
            "workload" => ("[workload]", workload_keys(wl_kind), 1),
            "run" => ("[run]", RUN_KEYS, 1),
            "fault" => ("[fault]", FAULT_KEYS, 1),
            "invariants" => ("[invariants]", INVARIANT_KEYS, 1),
            // AoT paths carry the element index: envelope.<i>.<key>.
            "envelope" => ("[[envelope]]", ENVELOPE_KEYS, 2),
            _ => {
                // Scalar top-level key used as a table (`[name.x]`).
                return unknown(line, segs[1], &format!("[{}]", segs[0]));
            }
        };
        match segs.get(key_idx) {
            Some(key) if segs.len() == key_idx + 1 && allowed.contains(key) => {}
            Some(key) => return unknown(line, key, section),
            None => {} // the AoT header itself (`envelope`)
        }
    }
    Ok(())
}

/// Parse one scenario file's contents. `file` is used for error
/// context; `stem` is the default scenario name.
pub fn parse_scenario(src: &str, file: &str, stem: &str) -> Result<ScenarioSpec, SpecError> {
    let (root, key_lines) = toml::parse_with_lines(src).map_err(|e| SpecError {
        file: file.to_string(),
        msg: e.to_string(),
    })?;
    let wl_kind = get(&root, "workload")
        .and_then(Value::as_table)
        .and_then(|t| get(t, "kind"))
        .and_then(Value::as_str)
        .unwrap_or("poisson")
        .to_string();
    validate_keys(&key_lines, &wl_kind, file)?;

    let name = match get(&root, "name").and_then(Value::as_str) {
        Some(s) => s.to_string(),
        None => stem.to_string(),
    };
    let description = get(&root, "description")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    let pin_digests = get(&root, "pin_digests")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    // [topology]
    let Some(topo_t) = get(&root, "topology").and_then(Value::as_table) else {
        return serr(file, "missing [topology] table");
    };
    let kind = match req_str(topo_t, "kind", file)?.as_str() {
        "testbed" => TopoKind::Testbed,
        "sim_baseline" => TopoKind::SimBaseline,
        other => return serr(file, format!("unknown topology kind `{other}`")),
    };
    let cuts = match get(topo_t, "cut") {
        Some(v) => pair_list(v, file, "cut")?
            .into_iter()
            .map(|(l, s)| (LeafId(l), SpineId(s)))
            .collect(),
        None => Vec::new(),
    };
    let degrades = match get(topo_t, "degrade").and_then(Value::as_array) {
        Some(items) => {
            let mut out = Vec::new();
            for item in items {
                let trip = item.as_array().unwrap_or(&[]);
                let (Some(l), Some(s), Some(m)) = (
                    trip.first().and_then(Value::as_int),
                    trip.get(1).and_then(Value::as_int),
                    trip.get(2).and_then(Value::as_int),
                ) else {
                    return serr(file, "`degrade` entries must be [leaf, spine, rate_mbps]");
                };
                out.push((LeafId(l as u16), SpineId(s as u16), m as u64));
            }
            out
        }
        None => Vec::new(),
    };

    // [workload]
    let Some(work_t) = get(&root, "workload").and_then(Value::as_table) else {
        return serr(file, "missing [workload] table");
    };
    // Placeholders for the staged-dependency kinds, which have no
    // size CDF / load / flow count (PointCfg carries them unused).
    let mut dist = FlowSizeDist::web_search();
    let mut load = 0.3;
    let mut n_flows = 0;
    let workload = match wl_kind.as_str() {
        "poisson" => {
            dist = match req_str(work_t, "dist", file)?.as_str() {
                "web_search" => FlowSizeDist::web_search(),
                "data_mining" => FlowSizeDist::data_mining(),
                other => return serr(file, format!("unknown dist `{other}`")),
            };
            load = req_float(work_t, "load", file)?;
            n_flows = req_usize(work_t, "flows", file)?;
            WorkloadKind::Poisson
        }
        "ring_allreduce" => {
            let ranks = req_usize(work_t, "ranks", file)?;
            let steps = req_usize(work_t, "steps", file)?;
            let chunk_kb = req_usize(work_t, "chunk_kb", file)?;
            if ranks < 2 || steps < 1 || chunk_kb < 1 {
                return serr(
                    file,
                    "ring_allreduce needs ranks ≥ 2, steps ≥ 1, chunk_kb ≥ 1",
                );
            }
            WorkloadKind::RingAllreduce(RingCfg {
                ranks,
                steps,
                chunk_bytes: chunk_kb as u64 * 1000,
            })
        }
        "incast" => {
            let fanout = req_usize(work_t, "fanout", file)?;
            let reply_kb = req_usize(work_t, "reply_kb", file)?;
            let bursts = req_usize(work_t, "bursts", file)?;
            if fanout < 1 || reply_kb < 1 || bursts < 1 {
                return serr(file, "incast needs fanout ≥ 1, reply_kb ≥ 1, bursts ≥ 1");
            }
            WorkloadKind::Incast(IncastCfg {
                fanout,
                reply_bytes: reply_kb as u64 * 1000,
                bursts,
            })
        }
        "elephant_mice" => {
            load = req_float(work_t, "load", file)?;
            n_flows = req_usize(work_t, "flows", file)?;
            let mice_kb = req_usize(work_t, "mice_kb", file)?;
            let elephant_kb = req_usize(work_t, "elephant_kb", file)?;
            let elephant_frac = req_float(work_t, "elephant_frac", file)?;
            if mice_kb < 1 || elephant_kb <= mice_kb {
                return serr(file, "elephant_mice needs elephant_kb > mice_kb ≥ 1");
            }
            if !(0.0..=1.0).contains(&elephant_frac) {
                return serr(
                    file,
                    format!("elephant_frac {elephant_frac} outside [0, 1]"),
                );
            }
            WorkloadKind::ElephantMice(MixCfg {
                mice_bytes: mice_kb as u64 * 1000,
                elephant_bytes: elephant_kb as u64 * 1000,
                elephant_frac,
            })
        }
        other => return serr(file, format!("unknown workload kind `{other}`")),
    };
    if !(0.0..=1.5).contains(&load) {
        return serr(file, format!("load {load} outside [0, 1.5]"));
    }

    // [run]
    let Some(run_t) = get(&root, "run").and_then(Value::as_table) else {
        return serr(file, "missing [run] table");
    };
    let seeds: Vec<u64> = match get(run_t, "seeds").and_then(Value::as_array) {
        Some(items) => {
            let mut out = Vec::new();
            for item in items {
                match item.as_int() {
                    Some(i) if i >= 0 => out.push(i as u64),
                    _ => return serr(file, "`seeds` must be non-negative integers"),
                }
            }
            out
        }
        None => return serr(file, "missing `seeds` in [run]"),
    };
    if seeds.is_empty() {
        return serr(file, "`seeds` must be non-empty");
    }
    let letflow_timeout = Time::from_us(opt_int(run_t, "letflow_timeout_us", 150) as u64);
    let drill_samples = usize::try_from(opt_int(run_t, "drill_samples", 2)).unwrap_or(2);
    let lbs: Vec<LbSpec> = match get(run_t, "lbs").and_then(Value::as_array) {
        Some(items) => {
            let mut out = Vec::new();
            for item in items {
                let Some(n) = item.as_str() else {
                    return serr(file, "`lbs` must be strings");
                };
                out.push(LbSpec {
                    name: n.to_string(),
                    letflow_timeout,
                    drill_samples,
                });
            }
            out
        }
        None => return serr(file, "missing `lbs` in [run]"),
    };
    if lbs.is_empty() {
        return serr(file, "`lbs` must be non-empty");
    }
    let drain = Time::from_ms(opt_int(run_t, "drain_ms", 3000) as u64);
    let goodput_interval = Time::from_us(opt_int(run_t, "goodput_interval_us", 500) as u64);

    // [fault] (optional)
    let fault = match get(&root, "fault").and_then(Value::as_table) {
        Some(ft) => {
            let spine = SpineId(req_usize(ft, "spine", file)? as u16);
            let start = time_ms(ft, "start_ms", file)?;
            let end = time_ms(ft, "end_ms", file)?;
            if end <= start {
                return serr(file, "fault `end_ms` must exceed `start_ms`");
            }
            match req_str(ft, "kind", file)?.as_str() {
                "blackhole" => Some(FaultSpec::Blackhole {
                    spine,
                    src: LeafId(req_usize(ft, "src_leaf", file)? as u16),
                    dst: LeafId(req_usize(ft, "dst_leaf", file)? as u16),
                    frac: req_float(ft, "frac", file)?,
                    start,
                    end,
                }),
                "random_drop" => Some(FaultSpec::RandomDrop {
                    spine,
                    rate: req_float(ft, "frac", file)?,
                    start,
                    end,
                }),
                other => return serr(file, format!("unknown fault kind `{other}`")),
            }
        }
        None => None,
    };

    // [invariants] (optional)
    let invariants = match get(&root, "invariants").and_then(Value::as_table) {
        Some(it) => InvariantCfg {
            max_unfinished_frac: get(it, "max_unfinished_frac")
                .and_then(Value::as_float)
                .unwrap_or(1.0),
            incast_floor_frac: get(it, "incast_floor_frac")
                .and_then(Value::as_float)
                .unwrap_or_else(|| InvariantCfg::default().incast_floor_frac),
        },
        None => InvariantCfg::default(),
    };

    // [[envelope]] (optional)
    let mut envelopes = Vec::new();
    if let Some(items) = get(&root, "envelope").and_then(Value::as_array) {
        for item in items {
            let Some(et) = item.as_table() else {
                return serr(file, "[[envelope]] entries must be tables");
            };
            let metric = match req_str(et, "metric", file)?.as_str() {
                "avg" => Metric::Avg,
                "p99" => Metric::P99,
                other => return serr(file, format!("unknown metric `{other}`")),
            };
            let env = EnvelopeSpec {
                metric,
                lb: req_str(et, "lb", file)?,
                baseline: req_str(et, "baseline", file)?,
                max_ratio: req_float(et, "max_ratio", file)?,
            };
            for who in [&env.lb, &env.baseline] {
                if !lbs.iter().any(|l| &l.name == who) {
                    return serr(file, format!("envelope references `{who}` not in `lbs`"));
                }
            }
            envelopes.push(env);
        }
    }

    let spec = ScenarioSpec {
        name,
        description,
        topology: TopologySpec {
            kind,
            cuts,
            degrades,
        },
        workload,
        dist,
        load,
        n_flows,
        seeds,
        lbs,
        drain,
        goodput_interval,
        fault,
        invariants,
        envelopes,
        pin_digests,
    };
    // Surface bad LB names at load time, not mid-run.
    let (topo, _) = spec.topology.build();
    for lb in &spec.lbs {
        lb.scheme(&topo).map_err(|msg| SpecError {
            file: file.to_string(),
            msg,
        })?;
    }
    Ok(spec)
}

/// Load one scenario file from disk.
pub fn load_file(path: &Path) -> Result<ScenarioSpec, SpecError> {
    let file = path.display().to_string();
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("scenario");
    let src = std::fs::read_to_string(path).map_err(|e| SpecError {
        file: file.clone(),
        msg: format!("read failed: {e}"),
    })?;
    parse_scenario(&src, &file, stem)
}

/// Load every `*.toml` scenario in a directory (non-recursive), sorted
/// by file name for deterministic grid order. `digests.toml` is the
/// golden store, not a scenario, and is skipped.
pub fn load_dir(dir: &Path) -> Result<Vec<ScenarioSpec>, SpecError> {
    let entries = std::fs::read_dir(dir).map_err(|e| SpecError {
        file: dir.display().to_string(),
        msg: format!("read_dir failed: {e}"),
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == "toml")
                && p.file_name().is_some_and(|n| n != "digests.toml")
        })
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in &paths {
        out.push(load_file(p)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        description = "smoke"
        [topology]
        kind = "testbed"
        [workload]
        dist = "web_search"
        load = 0.3
        flows = 40
        [run]
        seeds = [1, 2]
        lbs = ["hermes", "ecmp"]
    "#;

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = parse_scenario(MINIMAL, "mem", "smoke_test").expect("parses");
        assert_eq!(s.name, "smoke_test");
        assert_eq!(s.seeds, vec![1, 2]);
        assert_eq!(s.lbs.len(), 2);
        assert_eq!(s.drain, Time::from_ms(3000));
        assert!(!s.pin_digests);
        assert!(s.fault.is_none());
        assert_eq!(s.invariants.max_unfinished_frac, 1.0);
        assert_eq!(s.grid().len(), 4);
    }

    #[test]
    fn materializes_asymmetric_with_healthy_capacity() {
        let src = r#"
            [topology]
            kind = "testbed"
            cut = [[0, 3]]
            [workload]
            dist = "data_mining"
            load = 0.4
            flows = 30
            [run]
            seeds = [7]
            lbs = ["conga"]
        "#;
        let s = parse_scenario(src, "mem", "asym").expect("parses");
        let cfg = s.materialize(0, 7).expect("materializes");
        assert_eq!(cfg.seed, 7);
        let healthy = Topology::testbed().total_uplink_bps();
        assert_eq!(cfg.capacity_override, Some(healthy));
        assert!(cfg.topo.total_uplink_bps() < healthy);
    }

    #[test]
    fn fault_and_envelope_blocks_parse() {
        let src = r#"
            [topology]
            kind = "testbed"
            [workload]
            dist = "web_search"
            load = 0.3
            flows = 40
            [run]
            seeds = [1]
            lbs = ["hermes", "ecmp"]
            [fault]
            kind = "blackhole"
            spine = 0
            src_leaf = 0
            dst_leaf = 1
            frac = 1.0
            start_ms = 5
            end_ms = 100
            [[envelope]]
            metric = "avg"
            lb = "hermes"
            baseline = "ecmp"
            max_ratio = 0.7
        "#;
        let s = parse_scenario(src, "mem", "bh").expect("parses");
        assert!(matches!(s.fault, Some(FaultSpec::Blackhole { .. })));
        assert_eq!(s.envelopes.len(), 1);
        assert_eq!(s.envelopes[0].metric, Metric::Avg);
        let cfg = s.materialize(0, 1).expect("materializes");
        assert!(cfg.fault_plan.is_some());
    }

    #[test]
    fn rejects_unknown_lb_and_dangling_envelope() {
        let bad_lb = MINIMAL.replace("\"ecmp\"", "\"wecmp\"");
        assert!(parse_scenario(&bad_lb, "mem", "x").is_err());
        let dangling = format!(
            "{MINIMAL}\n[[envelope]]\nmetric = \"p99\"\nlb = \"hermes\"\nbaseline = \"conga\"\nmax_ratio = 1.0\n"
        );
        let e = parse_scenario(&dangling, "mem", "x").expect_err("must fail");
        assert!(e.msg.contains("conga"));
    }

    #[test]
    fn ring_and_incast_workloads_parse() {
        let ring = r#"
            [topology]
            kind = "testbed"
            [workload]
            kind = "ring_allreduce"
            ranks = 8
            steps = 3
            chunk_kb = 64
            [run]
            seeds = [1]
            lbs = ["hermes"]
        "#;
        let s = parse_scenario(ring, "mem", "ring").expect("parses");
        assert_eq!(
            s.workload,
            WorkloadKind::RingAllreduce(RingCfg {
                ranks: 8,
                steps: 3,
                chunk_bytes: 64_000,
            })
        );
        let cfg = s.materialize(0, 1).expect("materializes");
        assert_eq!(cfg.workload, s.workload);

        let incast = r#"
            [topology]
            kind = "testbed"
            [workload]
            kind = "incast"
            fanout = 6
            reply_kb = 32
            bursts = 5
            [run]
            seeds = [1]
            lbs = ["ecmp"]
            [invariants]
            incast_floor_frac = 0.3
        "#;
        let s = parse_scenario(incast, "mem", "inc").expect("parses");
        assert_eq!(
            s.workload,
            WorkloadKind::Incast(IncastCfg {
                fanout: 6,
                reply_bytes: 32_000,
                bursts: 5,
            })
        );
        assert_eq!(s.invariants.incast_floor_frac, 0.3);
    }

    #[test]
    fn elephant_mice_workload_parses() {
        let src = r#"
            [topology]
            kind = "testbed"
            [workload]
            kind = "elephant_mice"
            load = 0.3
            flows = 60
            mice_kb = 20
            elephant_kb = 1000
            elephant_frac = 0.1
            [run]
            seeds = [1]
            lbs = ["conga"]
        "#;
        let s = parse_scenario(src, "mem", "mix").expect("parses");
        let WorkloadKind::ElephantMice(mix) = s.workload else {
            panic!("wrong kind: {:?}", s.workload);
        };
        assert_eq!(mix.mice_bytes, 20_000);
        assert_eq!(mix.elephant_bytes, 1_000_000);
        assert_eq!(s.load, 0.3);
        assert_eq!(s.n_flows, 60);
    }

    #[test]
    fn unknown_keys_are_rejected_with_line_numbers() {
        // Typo'd `flws` in [workload]: must fail, naming the line.
        let typo = MINIMAL.replace("flows = 40", "flws = 40");
        let e = parse_scenario(&typo, "mem", "x").expect_err("typo must fail");
        assert!(e.msg.contains("unknown key `flws`"), "{}", e.msg);
        assert!(e.msg.contains("line 8"), "{}", e.msg);
        assert!(e.msg.contains("[workload]"), "{}", e.msg);

        // Unknown top-level table.
        let e = parse_scenario(&format!("{MINIMAL}\n[faultx]\nspine = 0\n"), "mem", "x")
            .expect_err("unknown section must fail");
        assert!(
            e.msg.contains("unknown top-level key `faultx`"),
            "{}",
            e.msg
        );

        // Per-kind keys: `ranks` is not a poisson key.
        let e = parse_scenario(
            &MINIMAL.replace("flows = 40", "flows = 40\n        ranks = 4"),
            "mem",
            "x",
        )
        .expect_err("kind-mismatched key must fail");
        assert!(e.msg.contains("unknown key `ranks`"), "{}", e.msg);

        // Unknown key inside [[envelope]].
        let e = parse_scenario(
            &format!(
                "{MINIMAL}\n[[envelope]]\nmetric = \"avg\"\nlb = \"hermes\"\nbaseline = \"ecmp\"\nmax_ratio = 1.0\nratio = 2.0\n"
            ),
            "mem",
            "x",
        )
        .expect_err("envelope typo must fail");
        assert!(e.msg.contains("unknown key `ratio`"), "{}", e.msg);
    }

    #[test]
    fn digest_keys_are_stable() {
        let s = parse_scenario(MINIMAL, "mem", "smoke_test").expect("parses");
        assert_eq!(s.digest_key(1, 2), "smoke_test/ecmp/2");
    }
}
