//! Checker self-test: deliberately-broken fixtures that must FAIL.
//!
//! A conformance suite that never fails is indistinguishable from one
//! that checks nothing, so `cargo run -p xtask -- conformance
//! --self-test` runs one broken fixture per checker class and demands
//! a failure of exactly that class. Two of the fixtures break at the
//! scenario level (a real sim run violating a declared bound, a wrong
//! pinned golden); the rest tamper with a healthy run's evidence to
//! reach checker branches a correct simulator can't trigger
//! (conservation imbalance, impossible FCTs, time reversal).

use std::collections::BTreeMap;

use hermes_bench::run_point_detailed_parallel_with;
use hermes_sim::MergeDefect;

use crate::check::{
    check_digests, check_envelopes, check_incast_floor, check_invariants, check_ring_steps,
    CheckClass, Failure,
};
use crate::run::{run_grid, RunOutcome};
use crate::spec::{parse_scenario, ScenarioSpec, SpecError};

/// One self-test case: a broken fixture and the class it must trip.
pub struct SelfTestCase {
    pub name: &'static str,
    pub expect: CheckClass,
    pub failures: Vec<Failure>,
}

fn fixture(extra: &str, stem: &str) -> Result<(ScenarioSpec, Vec<RunOutcome>), SpecError> {
    // The splice point is the top of the file: top-level keys (e.g.
    // `pin_digests`) must precede the first table header, and extra
    // tables ([fault], [[envelope]]) may appear in any order.
    let src = format!(
        r#"
        {extra}
        [topology]
        kind = "testbed"
        [workload]
        dist = "web_search"
        load = 0.3
        flows = 30
        [run]
        seeds = [1]
        lbs = ["ecmp"]
        drain_ms = 800
        "#
    );
    let spec = parse_scenario(&src, "selftest", stem)?;
    let outs = run_grid(std::slice::from_ref(&spec), 0)?;
    Ok((spec, outs))
}

/// Run every broken fixture, returning what each one tripped.
pub fn run_self_test() -> Result<Vec<SelfTestCase>, SpecError> {
    let mut cases = Vec::new();

    // -- Invariant, via a genuine sim: a mid-run full blackhole strands
    // ECMP flows, violating a declared zero-unfinished bound.
    let (spec, outs) = fixture(
        r#"
        [fault]
        kind = "blackhole"
        spine = 0
        src_leaf = 0
        dst_leaf = 1
        frac = 1.0
        start_ms = 2
        end_ms = 800
        [invariants]
        max_unfinished_frac = 0.0
        "#,
        "broken_unfinished_bound",
    )?;
    cases.push(SelfTestCase {
        name: "unfinished-flow bound (real blackhole run)",
        expect: CheckClass::Invariant,
        failures: check_invariants(&spec, &outs[0]),
    });

    // -- Invariant, via tampered evidence: checker branches a correct
    // simulator cannot reach.
    let (spec, mut outs) = fixture("", "broken_conservation")?;
    outs[0].result.conservation.injected += 1;
    cases.push(SelfTestCase {
        name: "packet-conservation imbalance (tampered report)",
        expect: CheckClass::Invariant,
        failures: check_invariants(&spec, &outs[0]),
    });

    let (spec, mut outs) = fixture("", "broken_fct")?;
    let start = outs[0].result.records[0].start;
    outs[0].result.records[0].finish = Some(start);
    cases.push(SelfTestCase {
        name: "FCT below ideal serialization (tampered record)",
        expect: CheckClass::Invariant,
        failures: check_invariants(&spec, &outs[0]),
    });

    let (spec, mut outs) = fixture("", "broken_clock")?;
    outs[0].result.goodput.reverse();
    cases.push(SelfTestCase {
        name: "non-monotonic goodput timeline (reversed series)",
        expect: CheckClass::Invariant,
        failures: check_invariants(&spec, &outs[0]),
    });

    // -- Digest: a pinned cell whose golden disagrees with the run.
    let (spec, outs) = fixture("pin_digests = true", "broken_golden")?;
    let refs: Vec<&RunOutcome> = outs.iter().collect();
    let wrong: BTreeMap<String, u64> = [(
        spec.digest_key(0, 1),
        outs[0].result.digest ^ 0xffff_ffff_ffff_ffff,
    )]
    .into();
    cases.push(SelfTestCase {
        name: "golden digest mismatch (stale pin)",
        expect: CheckClass::Digest,
        failures: check_digests(&spec, &refs, &wrong),
    });

    // -- Envelope: an LB compared against itself under an impossible
    // ratio; lhs == rhs, so any max_ratio < 1 must fail.
    let (spec, outs) = fixture(
        r#"
        [[envelope]]
        metric = "avg"
        lb = "ecmp"
        baseline = "ecmp"
        max_ratio = 0.5
        "#,
        "broken_envelope",
    )?;
    let refs: Vec<&RunOutcome> = outs.iter().collect();
    cases.push(SelfTestCase {
        name: "impossible FCT-ratio envelope (self vs self at 0.5x)",
        expect: CheckClass::Envelope,
        failures: check_envelopes(&spec, &refs),
    });

    // -- RingStep: a healthy ring-allreduce run with one rank's step-1
    // record removed — the rank "skipped a step", breaking both the
    // every-rank-once and the total-bytes conservation law.
    let ring_src = r#"
        [topology]
        kind = "testbed"
        [workload]
        kind = "ring_allreduce"
        ranks = 4
        steps = 2
        chunk_kb = 16
        [run]
        seeds = [1]
        lbs = ["ecmp"]
        drain_ms = 800
        "#;
    let spec = parse_scenario(ring_src, "selftest", "broken_ring_skip")?;
    let mut outs = run_grid(std::slice::from_ref(&spec), 0)?;
    // Step 1, rank 2 (flow id = 1 × ranks + 2 = 6) vanishes.
    outs[0].result.records.retain(|r| r.id.0 != 6);
    cases.push(SelfTestCase {
        name: "ring-step conservation (rank skipped a step)",
        expect: CheckClass::RingStep,
        failures: check_ring_steps(&spec, &outs[0]),
    });

    // -- IncastFloor: a healthy incast run with one reply's finish
    // stretched far past the burst — a starved responder collapses the
    // burst's drain goodput below any reasonable floor.
    let incast_src = r#"
        [topology]
        kind = "testbed"
        [workload]
        kind = "incast"
        fanout = 4
        reply_kb = 16
        bursts = 2
        [run]
        seeds = [1]
        lbs = ["ecmp"]
        drain_ms = 800
        "#;
    let spec = parse_scenario(incast_src, "selftest", "broken_incast_starved")?;
    let mut outs = run_grid(std::slice::from_ref(&spec), 0)?;
    {
        // Stretch reply 0 of burst 0 out by 10 s: its burst now drains
        // at a goodput far below the floor.
        let rec = &mut outs[0].result.records[0];
        rec.finish = rec.finish.map(|f| f + hermes_sim::Time::from_secs(10));
    }
    cases.push(SelfTestCase {
        name: "incast goodput floor (starved responder)",
        expect: CheckClass::IncastFloor,
        failures: check_incast_floor(&spec, &outs[0]),
    });

    // -- Sharded-engine seams: the merge layer ships two planted
    // defects (`MergeDefect`, compiled in but dead on every production
    // path) so the harness can prove its detection channels work. Both
    // run the same incast fixture — simultaneous burst replies across
    // racks guarantee cross-shard same-instant ties, exactly the events
    // the `(time, seq)` merge exists to order.
    let defect_src = r#"
        pin_digests = true
        [topology]
        kind = "testbed"
        [workload]
        kind = "incast"
        fanout = 4
        reply_kb = 16
        bursts = 3
        [run]
        seeds = [1]
        lbs = ["ecmp"]
        drain_ms = 800
        "#;
    let spec = parse_scenario(defect_src, "selftest", "broken_merge_seam")?;
    let clean = run_grid(std::slice::from_ref(&spec), 0)?;
    let goldens: BTreeMap<String, u64> = [(spec.digest_key(0, 1), clean[0].result.digest)].into();
    let cfg = spec.materialize(0, 1)?;
    let defective = |defect| RunOutcome {
        scenario: 0,
        lb_idx: 0,
        seed: 1,
        result: run_point_detailed_parallel_with(&cfg, spec.goodput_interval, 2, defect),
    };

    // Dropping the seq tiebreaker reorders same-instant events, so the
    // trace digest walks away from the clean golden: Digest class.
    let out = defective(MergeDefect::DropSeqTiebreak);
    cases.push(SelfTestCase {
        name: "sharded merge drops the seq tiebreaker (planted seam)",
        expect: CheckClass::Digest,
        failures: check_digests(&spec, &[&out], &goldens),
    });

    // Over-advancing past the lookahead window pops events the other
    // shards could still invalidate; the engine clamps the resulting
    // past-time schedules and the causality invariant counts them:
    // Invariant class.
    let out = defective(MergeDefect::OverAdvanceLookahead);
    cases.push(SelfTestCase {
        name: "sharded merge over-advances the lookahead (planted seam)",
        expect: CheckClass::Invariant,
        failures: check_invariants(&spec, &out),
    });

    Ok(cases)
}

/// True when every broken fixture tripped its intended class.
pub fn self_test_passed(cases: &[SelfTestCase]) -> bool {
    cases
        .iter()
        .all(|c| c.failures.iter().any(|f| f.class == c.expect))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_checker_class_demonstrably_fails() {
        let cases = run_self_test().expect("fixtures run");
        assert!(cases.len() >= 3);
        for c in &cases {
            assert!(
                c.failures.iter().any(|f| f.class == c.expect),
                "fixture `{}` did not trip {:?}: {:?}",
                c.name,
                c.expect,
                c.failures
            );
        }
        let classes: Vec<CheckClass> = cases.iter().map(|c| c.expect).collect();
        assert!(classes.contains(&CheckClass::Invariant));
        assert!(classes.contains(&CheckClass::Digest));
        assert!(classes.contains(&CheckClass::Envelope));
        assert!(classes.contains(&CheckClass::RingStep));
        assert!(classes.contains(&CheckClass::IncastFloor));
        assert!(self_test_passed(&cases));
    }
}
