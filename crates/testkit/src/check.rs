//! The five checker classes: invariants, golden digests, envelopes,
//! ring-step conservation, and the incast goodput floor.
//!
//! Every check produces [`Failure`]s rather than panicking, so one
//! broken cell doesn't mask the rest of the grid and the self-test can
//! assert that a deliberately-broken fixture trips exactly the class
//! it was built to trip.

use std::collections::BTreeMap;
use std::fmt;

use hermes_sim::Time;
use hermes_workload::WorkloadKind;

use crate::run::RunOutcome;
use crate::spec::{Metric, ScenarioSpec};

/// Which checker found the problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckClass {
    /// Per-run physical invariants (conservation, monotonicity, FCT
    /// sanity, unfinished bound).
    Invariant,
    /// Golden event-trace digest mismatch or missing pin.
    Digest,
    /// Statistical FCT-ratio envelope between LBs.
    Envelope,
    /// Ring-allreduce step conservation: every rank exactly once per
    /// step, no step released before its predecessor closed ring-wide,
    /// total bytes = ranks × steps × chunk.
    RingStep,
    /// Incast burst-drain goodput stayed above the configured fraction
    /// of the aggregator's line rate (and below the line rate itself).
    IncastFloor,
}

impl fmt::Display for CheckClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckClass::Invariant => write!(f, "invariant"),
            CheckClass::Digest => write!(f, "digest"),
            CheckClass::Envelope => write!(f, "envelope"),
            CheckClass::RingStep => write!(f, "ring_step"),
            CheckClass::IncastFloor => write!(f, "incast_floor"),
        }
    }
}

/// One conformance failure, attributed to a scenario cell.
#[derive(Clone, Debug)]
pub struct Failure {
    pub class: CheckClass,
    /// `scenario/lb/seed` (or `scenario` for grid-level checks).
    pub cell: String,
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.class, self.cell, self.detail)
    }
}

/// Check the per-run physical invariants of one outcome.
pub fn check_invariants(spec: &ScenarioSpec, out: &RunOutcome) -> Vec<Failure> {
    let mut fails = Vec::new();
    let cell = spec.digest_key(out.lb_idx, out.seed);
    let fail = |fails: &mut Vec<Failure>, detail: String| {
        fails.push(Failure {
            class: CheckClass::Invariant,
            cell: cell.clone(),
            detail,
        });
    };
    let r = &out.result;

    // (a) Packet conservation: injected = delivered + dropped + in-flight.
    if !r.conservation.balanced() {
        fail(
            &mut fails,
            format!("packet conservation violated: {:?}", r.conservation),
        );
    }

    // (b) Monotonic sim time, observed through the goodput timeline:
    // sample times strictly increase, cumulative bytes never decrease,
    // and no sample postdates the final clock.
    for w in r.goodput.windows(2) {
        if w[1].0 <= w[0].0 {
            fail(
                &mut fails,
                format!("goodput sample times not increasing at {:?}", w[1].0),
            );
            break;
        }
        if w[1].1 < w[0].1 {
            fail(
                &mut fails,
                format!("cumulative goodput decreased at {:?}", w[1].0),
            );
            break;
        }
    }
    if let Some(last) = r.goodput.last() {
        if last.0 > r.sim_time {
            fail(
                &mut fails,
                format!(
                    "sample at {:?} postdates final clock {:?}",
                    last.0, r.sim_time
                ),
            );
        }
    }

    // (c) Unfinished-flow bound.
    let frac = r.fct.unfinished_frac();
    if frac > spec.invariants.max_unfinished_frac {
        fail(
            &mut fails,
            format!(
                "unfinished fraction {:.3} exceeds bound {:.3}",
                frac, spec.invariants.max_unfinished_frac
            ),
        );
    }

    // (d) FCT sanity: a finished flow can never beat its own
    // serialization time on the host link (ideal lower bound; see
    // tests/properties.rs for the single-flow version).
    let (topo, _) = spec.topology.build();
    let rate = topo.host_link.rate_bps;
    for rec in &r.records {
        let Some(finish) = rec.finish else { continue };
        if finish < rec.start {
            fail(
                &mut fails,
                format!("flow {:?} finished before it started", rec.id),
            );
            continue;
        }
        let lower = Time::tx_time(rec.size, rate);
        if finish - rec.start < lower {
            fail(
                &mut fails,
                format!(
                    "flow {:?} ({} B) finished in {:?}, below ideal {:?}",
                    rec.id,
                    rec.size,
                    finish - rec.start,
                    lower
                ),
            );
        }
    }

    // (e) Causality: the engine must never clamp a past-time schedule.
    // A nonzero count means an event was popped before something it
    // should have followed — the sharded merge's lookahead was violated
    // (or a handler scheduled into the past) and release builds papered
    // over it by snapping the timestamp forward.
    if r.queue_clamps > 0 {
        fail(
            &mut fails,
            format!(
                "event queue clamped {} past-time schedule(s): causality violated",
                r.queue_clamps
            ),
        );
    }
    fails
}

/// Check ring-step conservation on a ring-allreduce outcome: a no-op
/// for every other workload kind.
///
/// Everything is reconstructed from the flow records alone (flow id =
/// `step × ranks + rank`, see `hermes_workload::RingCfg::flow_id`), so
/// the checker is independent of the driver that produced the run:
/// * every `(step, rank)` flow exists exactly once, with `chunk` bytes;
/// * every flow finished (a stalled collective is a failure — drain
///   budgets must cover the worst tolerated stall);
/// * no step-`k+1` flow starts before step `k` closed ring-wide;
/// * total payload = ranks × steps × chunk.
pub fn check_ring_steps(spec: &ScenarioSpec, out: &RunOutcome) -> Vec<Failure> {
    let WorkloadKind::RingAllreduce(ring) = spec.workload else {
        return Vec::new();
    };
    let mut fails = Vec::new();
    let cell = spec.digest_key(out.lb_idx, out.seed);
    let fail = |fails: &mut Vec<Failure>, detail: String| {
        fails.push(Failure {
            class: CheckClass::RingStep,
            cell: cell.clone(),
            detail,
        });
    };
    let r = &out.result;

    // Index records by decoded (step, rank); surface duplicates,
    // aliens, and wrong sizes as we go.
    let mut by_step: Vec<Vec<Option<&hermes_workload::FlowRecord>>> =
        vec![vec![None; ring.ranks]; ring.steps];
    for rec in &r.records {
        if rec.id.0 >= (ring.ranks * ring.steps) as u64 {
            fail(
                &mut fails,
                format!("flow {:?} outside the ring's id space", rec.id),
            );
            continue;
        }
        let (step, rank) = ring.decode(rec.id);
        if by_step[step][rank].replace(rec).is_some() {
            fail(
                &mut fails,
                format!("rank {rank} appears twice in step {step}"),
            );
        }
        if rec.size != ring.chunk_bytes {
            fail(
                &mut fails,
                format!(
                    "flow {:?} carries {} B, chunk is {} B",
                    rec.id, rec.size, ring.chunk_bytes
                ),
            );
        }
    }

    // Completeness + barrier ordering, step by step.
    let mut prev_close: Option<Time> = None;
    for (step, slots) in by_step.iter().enumerate() {
        let mut close: Option<Time> = None;
        for (rank, slot) in slots.iter().enumerate() {
            let Some(rec) = slot else {
                fail(&mut fails, format!("rank {rank} never ran step {step}"));
                continue;
            };
            if let Some(close_k) = prev_close {
                if rec.start < close_k {
                    fail(
                        &mut fails,
                        format!(
                            "rank {rank} started step {step} at {:?}, before step {} \
                             closed ring-wide at {close_k:?}",
                            rec.start,
                            step - 1
                        ),
                    );
                }
            }
            match rec.finish {
                Some(f) => close = Some(close.map_or(f, |c: Time| c.max(f))),
                None => fail(
                    &mut fails,
                    format!("rank {rank} never finished step {step}: collective stalled"),
                ),
            }
        }
        // A step with unfinished flows has no close; suppress cascading
        // barrier noise and keep the stall failure as the signal.
        prev_close = close;
        if close.is_none() {
            break;
        }
    }

    let total: u64 = r.records.iter().map(|rec| rec.size).sum();
    if total != ring.total_bytes() {
        fail(
            &mut fails,
            format!(
                "total workload bytes {} != ranks × steps × chunk = {}",
                total,
                ring.total_bytes()
            ),
        );
    }
    fails
}

/// Check the incast goodput floor on an incast outcome: a no-op for
/// every other workload kind.
///
/// Per burst (flow id = `burst × fanout + i`): all replies exist, were
/// released at the same instant, and finished; the burst's aggregate
/// goodput `fanout × reply_bytes × 8 / (last finish − release)` must
/// sit within `[floor_frac × line rate, line rate]` of the
/// aggregator's host link — below the floor means a starved responder
/// or collapsed drain, above the ceiling means broken accounting.
pub fn check_incast_floor(spec: &ScenarioSpec, out: &RunOutcome) -> Vec<Failure> {
    let WorkloadKind::Incast(cfg) = spec.workload else {
        return Vec::new();
    };
    let mut fails = Vec::new();
    let cell = spec.digest_key(out.lb_idx, out.seed);
    let fail = |fails: &mut Vec<Failure>, detail: String| {
        fails.push(Failure {
            class: CheckClass::IncastFloor,
            cell: cell.clone(),
            detail,
        });
    };
    let r = &out.result;
    let (topo, _) = spec.topology.build();
    let line_rate = topo.host_link.rate_bps as f64;
    let floor = spec.invariants.incast_floor_frac * line_rate;

    let mut by_burst: Vec<Vec<&hermes_workload::FlowRecord>> = vec![Vec::new(); cfg.bursts];
    for rec in &r.records {
        if rec.id.0 >= (cfg.fanout * cfg.bursts) as u64 {
            fail(
                &mut fails,
                format!("flow {:?} outside the incast id space", rec.id),
            );
            continue;
        }
        let (burst, _) = cfg.decode(rec.id);
        by_burst[burst].push(rec);
    }

    for (burst, recs) in by_burst.iter().enumerate() {
        if recs.len() != cfg.fanout {
            fail(
                &mut fails,
                format!(
                    "burst {burst} has {} of {} replies: incast never drained",
                    recs.len(),
                    cfg.fanout
                ),
            );
            continue;
        }
        let release = recs[0].start;
        if recs.iter().any(|rec| rec.start != release) {
            fail(
                &mut fails,
                format!("burst {burst} replies not released synchronously"),
            );
        }
        let mut last_finish = release;
        let mut starved = false;
        for rec in recs {
            match rec.finish {
                Some(f) => last_finish = last_finish.max(f),
                None => {
                    starved = true;
                    fail(
                        &mut fails,
                        format!("burst {burst}: reply {:?} never finished", rec.id),
                    );
                }
            }
        }
        if starved || last_finish <= release {
            continue;
        }
        let drain_s = (last_finish - release).as_secs_f64();
        let goodput = (cfg.fanout as u64 * cfg.reply_bytes * 8) as f64 / drain_s;
        if goodput < floor {
            fail(
                &mut fails,
                format!(
                    "burst {burst} drained at {:.3e} bps, below the floor {:.3e} \
                     ({:.0}% of line rate)",
                    goodput,
                    floor,
                    100.0 * spec.invariants.incast_floor_frac
                ),
            );
        }
        if goodput > line_rate {
            fail(
                &mut fails,
                format!(
                    "burst {burst} drained at {:.3e} bps, above the aggregator's \
                     line rate {line_rate:.3e}",
                    goodput
                ),
            );
        }
    }
    fails
}

/// Check pinned digests against the golden store. A pinned cell with
/// no golden is a failure (run `cargo run -p xtask -- bless`).
pub fn check_digests(
    spec: &ScenarioSpec,
    outs: &[&RunOutcome],
    goldens: &BTreeMap<String, u64>,
) -> Vec<Failure> {
    if !spec.pin_digests {
        return Vec::new();
    }
    let mut fails = Vec::new();
    for out in outs {
        let key = spec.digest_key(out.lb_idx, out.seed);
        match goldens.get(&key) {
            None => fails.push(Failure {
                class: CheckClass::Digest,
                cell: key,
                detail: "no golden digest pinned; run `cargo run -p xtask -- bless`".to_string(),
            }),
            Some(&want) if want != out.result.digest => fails.push(Failure {
                class: CheckClass::Digest,
                cell: key,
                detail: format!(
                    "event-trace digest {:#018x} != golden {:#018x}; if the behavior \
                     change is intended, re-bless",
                    out.result.digest, want
                ),
            }),
            Some(_) => {}
        }
    }
    fails
}

/// Mean of an FCT metric over a scenario's seeds for one LB.
fn mean_metric(outs: &[&RunOutcome], lb_idx: usize, metric: Metric) -> Option<f64> {
    let vals: Vec<f64> = outs
        .iter()
        .filter(|o| o.lb_idx == lb_idx)
        .map(|o| match metric {
            Metric::Avg => o.result.fct.avg,
            Metric::P99 => o.result.fct.p99,
        })
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Check the scenario's statistical envelopes over all its outcomes.
pub fn check_envelopes(spec: &ScenarioSpec, outs: &[&RunOutcome]) -> Vec<Failure> {
    let mut fails = Vec::new();
    for env in &spec.envelopes {
        let find = |name: &str| spec.lbs.iter().position(|l| l.name == name);
        let (Some(li), Some(bi)) = (find(&env.lb), find(&env.baseline)) else {
            // Unreachable for disk-loaded specs (the loader validates),
            // but hand-built specs deserve a failure, not a panic.
            fails.push(Failure {
                class: CheckClass::Envelope,
                cell: spec.name.clone(),
                detail: format!(
                    "envelope references unknown lb `{}`/`{}`",
                    env.lb, env.baseline
                ),
            });
            continue;
        };
        let (Some(lhs), Some(rhs)) = (
            mean_metric(outs, li, env.metric),
            mean_metric(outs, bi, env.metric),
        ) else {
            fails.push(Failure {
                class: CheckClass::Envelope,
                cell: spec.name.clone(),
                detail: "envelope has no outcomes to compare".to_string(),
            });
            continue;
        };
        let bound = env.max_ratio * rhs;
        if lhs > bound {
            fails.push(Failure {
                class: CheckClass::Envelope,
                cell: spec.name.clone(),
                detail: format!(
                    "{} {}: {:.6}s > {:.2} x {} ({:.6}s); ratio {:.3}",
                    env.lb,
                    env.metric,
                    lhs,
                    env.max_ratio,
                    env.baseline,
                    rhs,
                    if rhs > 0.0 { lhs / rhs } else { f64::INFINITY }
                ),
            });
        }
    }
    fails
}

// ---- golden-digest store --------------------------------------------

/// Parse a `digests.toml` golden store: a single `[digests]` table of
/// `"scenario/lb/seed" = "0x..."` entries.
pub fn parse_digests(src: &str) -> Result<BTreeMap<String, u64>, String> {
    let root = crate::toml::parse(src).map_err(|e| e.to_string())?;
    let table = root
        .get("digests")
        .and_then(crate::toml::Value::as_table)
        .ok_or("missing [digests] table")?;
    let mut out = BTreeMap::new();
    for (k, v) in table {
        let s = v.as_str().ok_or_else(|| format!("`{k}` is not a string"))?;
        let hex = s
            .strip_prefix("0x")
            .ok_or_else(|| format!("`{k}` digest must start with 0x"))?;
        let d = u64::from_str_radix(hex, 16).map_err(|e| format!("`{k}`: {e}"))?;
        out.insert(k.clone(), d);
    }
    Ok(out)
}

/// Render a golden store back to `digests.toml` form (sorted, stable).
pub fn format_digests(goldens: &BTreeMap<String, u64>) -> String {
    let mut out = String::from(
        "# Golden event-trace digests for pinned (scenario, lb, seed) cells.\n\
         # Regenerate with `cargo run -p xtask -- bless` after intended\n\
         # behavior changes; see DESIGN.md section 10.\n\n[digests]\n",
    );
    for (k, v) in goldens {
        out.push_str(&format!("\"{k}\" = \"{v:#018x}\"\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_grid;
    use crate::spec::parse_scenario;

    fn smoke_outcomes() -> (ScenarioSpec, Vec<RunOutcome>) {
        let spec = parse_scenario(
            r#"
            pin_digests = true
            [topology]
            kind = "testbed"
            [workload]
            dist = "web_search"
            load = 0.3
            flows = 25
            [run]
            seeds = [1]
            lbs = ["ecmp"]
            drain_ms = 1000
            [[envelope]]
            metric = "avg"
            lb = "ecmp"
            baseline = "ecmp"
            max_ratio = 1.0
            "#,
            "mem",
            "smoke",
        )
        .expect("parses");
        let outs = run_grid(std::slice::from_ref(&spec), 1).expect("runs");
        (spec, outs)
    }

    #[test]
    fn healthy_run_passes_all_checkers() {
        let (spec, outs) = smoke_outcomes();
        let refs: Vec<&RunOutcome> = outs.iter().collect();
        assert!(check_invariants(&spec, &outs[0]).is_empty());
        // Self-vs-self at ratio 1.0 always holds (lhs == rhs).
        assert!(check_envelopes(&spec, &refs).is_empty());
        let goldens: BTreeMap<String, u64> =
            [(spec.digest_key(0, 1), outs[0].result.digest)].into();
        assert!(check_digests(&spec, &refs, &goldens).is_empty());
    }

    #[test]
    fn tampered_evidence_trips_the_invariant_class() {
        let (spec, mut outs) = smoke_outcomes();
        // Conservation: claim one more injected packet than retired.
        outs[0].result.conservation.injected += 1;
        let fails = check_invariants(&spec, &outs[0]);
        assert!(fails
            .iter()
            .any(|f| f.class == CheckClass::Invariant && f.detail.contains("conservation")));
        // FCT sanity: a flow that finished instantly.
        let (spec2, mut outs2) = smoke_outcomes();
        outs2[0].result.records[0].finish = Some(outs2[0].result.records[0].start);
        let fails2 = check_invariants(&spec2, &outs2[0]);
        assert!(fails2.iter().any(|f| f.detail.contains("below ideal")));
    }

    #[test]
    fn wrong_or_missing_golden_trips_the_digest_class() {
        let (spec, outs) = smoke_outcomes();
        let refs: Vec<&RunOutcome> = outs.iter().collect();
        let wrong: BTreeMap<String, u64> = [(spec.digest_key(0, 1), 0xdead_beef)].into();
        let fails = check_digests(&spec, &refs, &wrong);
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].class, CheckClass::Digest);
        let fails = check_digests(&spec, &refs, &BTreeMap::new());
        assert!(fails[0].detail.contains("bless"));
    }

    #[test]
    fn digest_store_roundtrips() {
        let goldens: BTreeMap<String, u64> = [
            ("sym/hermes/1".to_string(), 0x1234_5678_9abc_def0_u64),
            ("sym/ecmp/2".to_string(), 7),
        ]
        .into();
        let text = format_digests(&goldens);
        let back = parse_digests(&text).expect("parses");
        assert_eq!(back, goldens);
    }
}
