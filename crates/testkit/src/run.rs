//! Parallel multi-seed scenario execution.
//!
//! Each `(scenario, lb, seed)` grid cell is one fully independent
//! deterministic simulation, so the executor fans the job list out
//! across a scoped thread pool (no rayon in-tree; `std::thread::scope`
//! plus an atomic work counter is all this needs). `Simulation` itself
//! is not `Send` — it holds `Rc` sensing state — so each worker
//! materializes and runs its sims entirely inside its own thread; only
//! the `Send` spec and the plain-data [`DetailedResult`] cross the
//! boundary. Results are reassembled in job order, so the output is
//! byte-identical no matter how the threads interleave.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hermes_bench::{run_point_detailed, run_point_detailed_parallel, DetailedResult};

use crate::spec::{ScenarioSpec, SpecError};

/// One completed grid cell.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Index into the spec slice passed to [`run_grid`].
    pub scenario: usize,
    /// Index into that scenario's `lbs`.
    pub lb_idx: usize,
    pub seed: u64,
    pub result: DetailedResult,
}

/// Flatten the scenarios into the deterministic job list.
fn jobs(specs: &[ScenarioSpec]) -> Vec<(usize, usize, u64)> {
    let mut out = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        for (li, seed) in spec.grid() {
            out.push((si, li, seed));
        }
    }
    out
}

/// Run every `(scenario, lb, seed)` cell, `threads`-wide (0 = one per
/// available core). Returns outcomes in job order regardless of
/// scheduling. Fails fast on a materialization error; sim panics
/// propagate out of the scope join.
pub fn run_grid(specs: &[ScenarioSpec], threads: usize) -> Result<Vec<RunOutcome>, SpecError> {
    run_grid_sharded(specs, threads, 1)
}

/// [`run_grid`] with each cell driven through the sharded engine with
/// `sim_threads` workers (`<= 1` keeps the single-queue fast path).
/// `threads` fans cells out across host threads; `sim_threads` shards
/// the event queue *inside* each cell — two independent axes. Digests
/// must be byte-identical along both.
pub fn run_grid_sharded(
    specs: &[ScenarioSpec],
    threads: usize,
    sim_threads: usize,
) -> Result<Vec<RunOutcome>, SpecError> {
    let jobs = jobs(specs);
    // Materialize every cell up front so config errors surface before
    // any thread spawns (PointCfg is Send; Simulation is not).
    let mut work = Vec::with_capacity(jobs.len());
    for &(si, li, seed) in &jobs {
        work.push((si, li, seed, specs[si].materialize(li, seed)?));
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    } else {
        threads
    }
    .min(work.len().max(1));

    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, RunOutcome)>> = Mutex::new(Vec::with_capacity(work.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some((si, li, seed, cfg)) = work.get(idx) else {
                    break;
                };
                let result = if sim_threads >= 2 {
                    run_point_detailed_parallel(cfg, specs[*si].goodput_interval, sim_threads)
                } else {
                    run_point_detailed(cfg, specs[*si].goodput_interval)
                };
                let outcome = RunOutcome {
                    scenario: *si,
                    lb_idx: *li,
                    seed: *seed,
                    result,
                };
                done.lock()
                    .expect("result sink poisoned")
                    .push((idx, outcome));
            });
        }
    });
    let mut collected = done.into_inner().expect("result sink poisoned");
    collected.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(collected.len(), jobs.len());
    Ok(collected.into_iter().map(|(_, o)| o).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_scenario;

    const TWO_LB: &str = r#"
        [topology]
        kind = "testbed"
        [workload]
        dist = "web_search"
        load = 0.3
        flows = 25
        [run]
        seeds = [1, 2]
        lbs = ["ecmp", "letflow"]
        drain_ms = 1000
    "#;

    #[test]
    fn parallel_run_matches_serial_run() {
        let spec = parse_scenario(TWO_LB, "mem", "par").expect("parses");
        let specs = [spec];
        let par = run_grid(&specs, 4).expect("parallel runs");
        let ser = run_grid(&specs, 1).expect("serial runs");
        assert_eq!(par.len(), 4);
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(
                (p.scenario, p.lb_idx, p.seed),
                (s.scenario, s.lb_idx, s.seed)
            );
            assert_eq!(
                p.result.digest, s.result.digest,
                "thread count changed a digest"
            );
            assert_eq!(p.result.fct.avg, s.result.fct.avg);
        }
    }

    #[test]
    fn sharded_cells_match_single_queue_cells() {
        let spec = parse_scenario(TWO_LB, "mem", "shard").expect("parses");
        let specs = [spec];
        let single = run_grid(&specs, 1).expect("runs");
        for sim_threads in [2, 4] {
            let sharded = run_grid_sharded(&specs, 2, sim_threads).expect("runs");
            for (a, b) in single.iter().zip(&sharded) {
                assert_eq!(
                    a.result.digest, b.result.digest,
                    "sim_threads={sim_threads} changed a digest"
                );
                assert_eq!(a.result.events, b.result.events);
                assert_eq!(b.result.queue_clamps, 0);
                assert_eq!(b.result.sim_threads, sim_threads as u64);
                assert!(!b.result.shards.is_empty(), "sharded run records shards");
            }
        }
    }

    #[test]
    fn job_order_is_scenario_major() {
        let spec = parse_scenario(TWO_LB, "mem", "par").expect("parses");
        let specs = [spec.clone(), spec];
        let order: Vec<_> = jobs(&specs);
        assert_eq!(order[0], (0, 0, 1));
        assert_eq!(order[3], (0, 1, 2));
        assert_eq!(order[4], (1, 0, 1));
        assert_eq!(order.len(), 8);
    }
}
