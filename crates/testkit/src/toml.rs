//! A minimal TOML-subset parser for scenario specs.
//!
//! The build environment is air-gapped (every dependency is vendored
//! in-tree), so rather than vendoring a full `toml` crate the testkit
//! carries its own parser for the subset the scenario schema uses:
//!
//! * comments (`#`), bare and quoted keys, `key = value` pairs,
//! * `[table]` and dotted `[table.sub]` headers,
//! * `[[array-of-tables]]` headers,
//! * values: basic strings, integers (with `_` separators), floats,
//!   booleans, and (possibly nested, possibly multi-line) arrays.
//!
//! Unsupported TOML (inline tables, dates, multi-line strings, dotted
//! keys in key position) is rejected with a line-numbered error rather
//! than silently misparsed. Tables are `BTreeMap`s, so iteration order
//! is deterministic by construction.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
    Table(Table),
}

/// A TOML table with deterministic (sorted) iteration order.
pub type Table = BTreeMap<String, Value>;

/// A parse failure, with the 1-based line it happened on.
#[derive(Clone, Debug)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric coercion: integers read as floats too.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// 1-based source line of every key and table header, keyed by dotted
/// path (array-of-tables elements get their 0-based index as a path
/// segment: `envelope.0.metric`). Lets schema validators report
/// *where* an unknown key sits, not just that one exists.
pub type KeyLines = BTreeMap<String, usize>;

/// Parse a TOML document into its root table.
pub fn parse(src: &str) -> Result<Table, ParseError> {
    parse_with_lines(src).map(|(t, _)| t)
}

/// [`parse`], also returning the source line of every key and header
/// (see [`KeyLines`]).
pub fn parse_with_lines(src: &str) -> Result<(Table, KeyLines), ParseError> {
    let mut root = Table::new();
    let mut key_lines = KeyLines::new();
    // Path of the table new `key = value` pairs land in.
    let mut current: Vec<String> = Vec::new();
    // Dotted display path of `current` (AoT element index included).
    let mut display: String = String::new();
    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            i += 1;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("[[") {
            let Some(head) = rest.strip_suffix("]]") else {
                return err(lineno, "unterminated [[array-of-tables]] header");
            };
            let path = parse_key_path(head.trim(), lineno)?;
            let idx = push_array_table(&mut root, &path, lineno)?;
            display = format!("{}.{idx}", path.join("."));
            key_lines.entry(path.join(".")).or_insert(lineno);
            current = path;
            current.push(String::new()); // marker: inside the last array element
            i += 1;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            let Some(head) = rest.strip_suffix(']') else {
                return err(lineno, "unterminated [table] header");
            };
            let path = parse_key_path(head.trim(), lineno)?;
            ensure_table(&mut root, &path, lineno)?;
            display = path.join(".");
            key_lines.entry(display.clone()).or_insert(lineno);
            current = path;
            i += 1;
            continue;
        }
        // key = value (value may span lines if it is an array).
        let Some(eq) = find_unquoted(trimmed, '=') else {
            return err(lineno, format!("expected `key = value`, got `{trimmed}`"));
        };
        let key = parse_key(trimmed[..eq].trim(), lineno)?;
        let mut vtext = trimmed[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance.
        while bracket_depth(&vtext) > 0 {
            i += 1;
            if i >= lines.len() {
                return err(lineno, "unterminated array");
            }
            vtext.push(' ');
            vtext.push_str(strip_comment(lines[i]).trim());
        }
        let value = parse_value(&vtext, lineno)?;
        let dotted = if display.is_empty() {
            key.clone()
        } else {
            format!("{display}.{key}")
        };
        key_lines.insert(dotted, lineno);
        insert(&mut root, &current, key, value, lineno)?;
        i += 1;
    }
    Ok((root, key_lines))
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// Byte index of the first `target` outside any basic string.
fn find_unquoted(line: &str, target: char) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == target {
            return Some(idx);
        }
    }
    None
}

/// Net bracket nesting outside strings (positive = unclosed `[`).
fn bracket_depth(text: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else {
            match c {
                '"' => in_str = true,
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
        }
    }
    depth
}

/// One key: bare (`a-b_c2`) or quoted (`"any text"`).
fn parse_key(text: &str, lineno: usize) -> Result<String, ParseError> {
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return err(lineno, "unterminated quoted key");
        };
        return unescape(inner, lineno);
    }
    if text.is_empty()
        || !text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return err(lineno, format!("invalid bare key `{text}`"));
    }
    Ok(text.to_string())
}

/// A dotted header path (`a.b."c d"`). Quoted segments may contain dots.
fn parse_key_path(text: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let mut parts = Vec::new();
    let mut rest = text;
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('"') {
            let Some(close) = after.find('"') else {
                return err(lineno, "unterminated quoted key in header");
            };
            parts.push(unescape(&after[..close], lineno)?);
            rest = after[close + 1..].trim_start();
        } else {
            let end = rest.find('.').unwrap_or(rest.len());
            parts.push(parse_key(rest[..end].trim(), lineno)?);
            rest = &rest[end..];
        }
        if rest.is_empty() {
            break;
        }
        let Some(after_dot) = rest.strip_prefix('.') else {
            return err(lineno, format!("expected `.` between keys in `{text}`"));
        };
        rest = after_dot;
    }
    Ok(parts)
}

fn unescape(text: &str, lineno: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            other => return err(lineno, format!("unsupported escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ParseError> {
    let text = text.trim();
    if text.is_empty() {
        return err(lineno, "missing value");
    }
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return err(lineno, "unterminated string");
        };
        // Reject an interior unescaped quote (`"a" x "b"`).
        if find_unquoted(&format!("\"{inner}\""), '\0').is_some() {
            return err(lineno, "malformed string");
        }
        return Ok(Value::Str(unescape(inner, lineno)?));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('[') {
        return parse_array(text, lineno);
    }
    let plain = text.replace('_', "");
    if !plain.contains(['.', 'e', 'E']) {
        if let Some(hex) = plain
            .strip_prefix("0x")
            .or_else(|| plain.strip_prefix("0X"))
        {
            if let Ok(i) = i64::from_str_radix(hex, 16) {
                return Ok(Value::Int(i));
            }
        } else if let Ok(i) = plain.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    if let Ok(f) = plain.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    err(lineno, format!("unrecognized value `{text}`"))
}

/// Parse an array literal, including nested arrays, in one string.
fn parse_array(text: &str, lineno: usize) -> Result<Value, ParseError> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or(ParseError {
            line: lineno,
            msg: "malformed array".to_string(),
        })?;
    let mut items = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_value(part, lineno)?);
    }
    Ok(Value::Array(items))
}

/// Split on commas at bracket depth zero, outside strings.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0;
    for (idx, c) in text.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' => depth += 1,
            ']' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&text[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Walk (creating) nested tables along `path`; a trailing empty segment
/// means "the last element of the array-of-tables at the prior key".
fn descend<'a>(
    root: &'a mut Table,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Table, ParseError> {
    let mut cur = root;
    let mut idx = 0;
    while idx < path.len() {
        let seg = &path[idx];
        if seg.is_empty() {
            // Marker from a [[header]]: stay in the array's last element,
            // which the prior iteration already entered.
            idx += 1;
            continue;
        }
        let is_aot_hop = path.get(idx + 1).is_some_and(String::is_empty);
        let entry = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        cur = match entry {
            Value::Table(t) => t,
            Value::Array(a) if is_aot_hop || idx + 1 < path.len() => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return err(lineno, format!("`{seg}` is not an array of tables")),
            },
            _ => return err(lineno, format!("key `{seg}` is not a table")),
        };
        idx += 1;
    }
    Ok(cur)
}

fn ensure_table(root: &mut Table, path: &[String], lineno: usize) -> Result<(), ParseError> {
    descend(root, path, lineno).map(|_| ())
}

/// Append an element to the array-of-tables at `path`; returns the new
/// element's 0-based index.
fn push_array_table(root: &mut Table, path: &[String], lineno: usize) -> Result<usize, ParseError> {
    let (last, prefix) = path.split_last().ok_or(ParseError {
        line: lineno,
        msg: "empty [[header]]".to_string(),
    })?;
    let parent = descend(root, prefix, lineno)?;
    match parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()))
    {
        Value::Array(a) => {
            a.push(Value::Table(Table::new()));
            Ok(a.len() - 1)
        }
        _ => err(lineno, format!("key `{last}` is not an array of tables")),
    }
}

fn insert(
    root: &mut Table,
    current: &[String],
    key: String,
    value: Value,
    lineno: usize,
) -> Result<(), ParseError> {
    let table = descend(root, current, lineno)?;
    if table.insert(key.clone(), value).is_some() {
        return err(lineno, format!("duplicate key `{key}`"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_comments() {
        let t = parse(
            "# header comment\n\
             name = \"sym # not a comment\"  # trailing\n\
             load = 0.4\n\
             flows = 1_000\n\
             pin = true\n\
             mask = 0xFF\n",
        )
        .expect("parses");
        assert_eq!(t["name"].as_str(), Some("sym # not a comment"));
        assert_eq!(t["load"].as_float(), Some(0.4));
        assert_eq!(t["flows"].as_int(), Some(1000));
        assert_eq!(t["pin"].as_bool(), Some(true));
        assert_eq!(t["mask"].as_int(), Some(255));
    }

    #[test]
    fn tables_and_dotted_headers() {
        let t = parse("[a]\nx = 1\n[a.b]\ny = 2\n").expect("parses");
        let a = t["a"].as_table().expect("table");
        assert_eq!(a["x"].as_int(), Some(1));
        assert_eq!(a["b"].as_table().expect("sub")["y"].as_int(), Some(2));
    }

    #[test]
    fn arrays_nested_and_multiline() {
        let t = parse("seeds = [1, 2, 3]\ncuts = [\n  [0, 3],\n  [1, 2],  # comment\n]\n")
            .expect("parses");
        let seeds: Vec<i64> = t["seeds"]
            .as_array()
            .expect("array")
            .iter()
            .map(|v| v.as_int().expect("int"))
            .collect();
        assert_eq!(seeds, vec![1, 2, 3]);
        let cuts = t["cuts"].as_array().expect("array");
        assert_eq!(cuts.len(), 2);
        assert_eq!(cuts[1].as_array().expect("inner")[0].as_int(), Some(1));
    }

    #[test]
    fn array_of_tables() {
        let t =
            parse("[[lb]]\nname = \"hermes\"\n[[lb]]\nname = \"ecmp\"\nx = 2\n").expect("parses");
        let lbs = t["lb"].as_array().expect("aot");
        assert_eq!(lbs.len(), 2);
        assert_eq!(
            lbs[0].as_table().expect("t")["name"].as_str(),
            Some("hermes")
        );
        assert_eq!(lbs[1].as_table().expect("t")["x"].as_int(), Some(2));
    }

    #[test]
    fn quoted_keys_hold_slashes() {
        let t = parse("[digests]\n\"sym/hermes/1\" = \"0xabc\"\n").expect("parses");
        let d = t["digests"].as_table().expect("table");
        assert_eq!(d["sym/hermes/1"].as_str(), Some("0xabc"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbad line\n").expect_err("must fail");
        assert_eq!(e.line, 2);
        let e = parse("x = 1\nx = 2\n").expect_err("duplicate");
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn rejects_unsupported_forms() {
        assert!(
            parse("t = { a = 1 }\n").is_err(),
            "inline tables unsupported"
        );
        assert!(parse("d = 2024-01-01\n").is_err(), "dates unsupported");
        assert!(parse("[unclosed\n").is_err());
    }

    #[test]
    fn key_lines_map_paths_to_source_lines() {
        let (_, lines) = parse_with_lines(
            "name = \"x\"\n\
             \n\
             [topology]\n\
             kind = \"testbed\"\n\
             \n\
             [[envelope]]\n\
             metric = \"avg\"\n\
             [[envelope]]\n\
             metric = \"p99\"\n",
        )
        .expect("parses");
        assert_eq!(lines["name"], 1);
        assert_eq!(lines["topology"], 3);
        assert_eq!(lines["topology.kind"], 4);
        assert_eq!(lines["envelope"], 6, "first AoT header line is kept");
        assert_eq!(lines["envelope.0.metric"], 7);
        assert_eq!(lines["envelope.1.metric"], 9);
    }

    #[test]
    fn negative_and_exponent_floats() {
        let t = parse("a = -3\nb = 2.5e9\nc = -0.7\n").expect("parses");
        assert_eq!(t["a"].as_int(), Some(-3));
        assert_eq!(t["b"].as_float(), Some(2.5e9));
        assert_eq!(t["c"].as_float(), Some(-0.7));
    }
}
