//! The scoped rule engine: token-stream checks over one source file.
//!
//! Two generations of rules run here. The five PR-1 rules (wall-clock,
//! hash-order, stray-rng, lib-unwrap, fault-mutation) are ported from
//! the old regex/mask lint onto token sequences. Five more are only
//! expressible at token level: float-determinism, panic-surface,
//! unsafe-inventory, concurrency-readiness, telemetry-hygiene.
//!
//! Scopes are explicit: every rule declares which (crate, kind, file)
//! combinations it covers, and `#[cfg(test)]` regions are excluded by
//! brace-matched token tracking, not text masking. The four new
//! behavioral rules accept per-site suppressions —
//! `// ANALYZER: allow(rule, reason)` trailing the line or on the line
//! immediately above — and every suppression must earn its keep: an
//! unused one is itself a finding (`stale-allow`), as is a malformed
//! one (`allow-syntax`). unsafe-inventory is deliberately *not*
//! suppressible: its escape hatch is the reviewed, committed
//! `analyzer_baseline.json`, so new unsafe is always a visible diff.

use crate::classify::{FileClass, Kind};
use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;

/// One rule violation (or meta-finding) at a source line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    pub rule: &'static str,
    /// The trimmed source line, for human-readable reports.
    pub text: String,
}

/// One `unsafe` occurrence that carries its `// SAFETY:` justification.
/// Keyed by content, not line number, so pure code motion never churns
/// the committed baseline.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeSite {
    pub file: String,
    /// The trimmed source line containing the `unsafe` keyword.
    pub context: String,
    /// The `SAFETY:` comment text (the reason the baseline requires).
    pub safety: String,
}

/// Everything the engine extracted from one file.
#[derive(Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Rules a `// ANALYZER: allow(rule, reason)` comment may suppress.
/// The legacy five predate suppressions and stay absolute;
/// unsafe-inventory's only escape hatch is the committed baseline.
pub const SUPPRESSIBLE: &[&str] = &[
    "float-determinism",
    "panic-surface",
    "concurrency-readiness",
    "telemetry-hygiene",
];

/// Why each rule exists — printed once per tripped rule in reports.
pub const RULE_WHY: &[(&str, &str)] = &[
    (
        "wall-clock",
        "simulation crates must use hermes_sim::Time; only hermes-bench times real execution",
    ),
    (
        "hash-order",
        "hash iteration order is per-process random; use BTreeMap/BTreeSet/Vec so event and RNG \
         order is reproducible",
    ),
    (
        "stray-rng",
        "all randomness must derive from SimRng so the master seed determines every draw",
    ),
    (
        "lib-unwrap",
        "library code must expect() with an invariant message or handle the None/Err",
    ),
    (
        "fault-mutation",
        "mid-run fabric mutation must be scheduled via a FaultPlan so it flows through the event \
         queue (digested, deterministic); only hermes-net defines these operations and only \
         hermes-runtime dispatches them",
    ),
    (
        "float-determinism",
        "engine-layer float arithmetic accumulates differently once the sharded engine reorders \
         work; keep it to the allowlisted modules or use fixed-point/stable-order forms",
    ),
    (
        "panic-surface",
        "hot-path modules must not be able to panic mid-run; prove the invariant and suppress \
         per-site with `// ANALYZER: allow(panic-surface, reason)`",
    ),
    (
        "unsafe-inventory",
        "every unsafe block needs a `// SAFETY:` comment and a reviewed analyzer_baseline.json \
         entry, so new unsafe is always an explicit diff",
    ),
    (
        "concurrency-readiness",
        "sim-facing crates stay single-thread-deterministic; threads, locks, atomics and \
         `static mut` belong only in testkit's scoped pool and the sharded-engine files \
         whose merge/window protocols keep digests byte-identical (DESIGN.md §17)",
    ),
    (
        "telemetry-hygiene",
        "emit_with closures must be side-effect-free so the disabled sink keeps zero overhead \
         and identical digests",
    ),
    (
        "allow-syntax",
        "suppressions must be `// ANALYZER: allow(rule, reason)` with a suppressible rule and a \
         non-empty reason",
    ),
    (
        "stale-allow",
        "this suppression no longer matches any finding; delete it so allows stay meaningful",
    ),
];

pub fn rule_why(name: &str) -> &'static str {
    RULE_WHY
        .iter()
        .find(|(n, _)| *n == name)
        .map_or("", |(_, why)| why)
}

/// Engine-layer files where float math is deliberate and reviewed.
/// Everything here is either setup-time conversion or per-entity local
/// state with a fixed update order — none of it accumulates across a
/// would-be shard boundary. Documented in DESIGN.md §13.
pub const FLOAT_ALLOW: &[(&str, &str)] = &[
    (
        "crates/sim/src/rng.rs",
        "u64->f64 unit-interval mapping is the seeded draw itself; bit-exact by construction",
    ),
    (
        "crates/sim/src/time.rs",
        "secs<->ns conversions at the config boundary; Time stays integer nanoseconds",
    ),
    (
        "crates/net/src/rate.rs",
        "DRE EWMA is per-port local state updated in event order",
    ),
    (
        "crates/net/src/failure.rs",
        "hash->unit-interval mapping, a pure function of the packet tuple",
    ),
    (
        "crates/net/src/packet.rs",
        "CONGA ce/fb congestion metadata mirrors the paper's header fields",
    ),
    (
        "crates/net/src/topology.rs",
        "link-rate unit conversions for construction and display, not in the event path",
    ),
    (
        "crates/net/src/faultplan.rs",
        "drop-rate ramps are computed when the plan is built, before the run starts",
    ),
    (
        "crates/runtime/src/config.rs",
        "workload weights and rates parsed at setup time",
    ),
];

/// Hot-path files outside `crates/sim` that panic-surface also covers.
const PANIC_HOT_FILES: &[&str] = &["crates/net/src/port.rs", "crates/net/src/pool.rs"];

/// Files allowed to use threads/locks/atomics: testkit's scoped worker
/// pool (parallelizes *independent whole runs*), and the sharded-engine
/// files that earn their parallelism through the deterministic
/// `(time, seq)` merge / conservative-window contracts of DESIGN.md §17
/// — the digest offload sink, the window-barrier drain engine, and the
/// runtime's `run_parallel` surface.
const CONCURRENCY_ALLOW_FILES: &[&str] = &[
    "crates/testkit/src/run.rs",
    "crates/net/src/audit.rs",
    "crates/net/src/shard.rs",
    "crates/runtime/src/sim.rs",
];

/// Identifiers that read as keywords before `[` (array literals /
/// types, not indexing).
const NONINDEX_KEYWORDS: &[&str] = &[
    "return", "break", "in", "if", "else", "match", "mut", "ref", "as", "const", "static", "move",
    "loop", "while", "for", "where", "unsafe", "dyn", "impl", "box", "await", "yield",
];

/// Assignment operators (each is a single token from the lexer, so `=`
/// here can never be half of `==`/`=>`/`<=`/`>=`/`!=`).
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

fn float_scope(c: &FileClass) -> bool {
    matches!(c.krate.as_str(), "sim" | "net" | "runtime")
        && c.kind == Kind::Lib
        && !FLOAT_ALLOW.iter().any(|(f, _)| *f == c.rel)
}

fn panic_scope(c: &FileClass) -> bool {
    (c.krate == "sim" && c.kind == Kind::Lib) || PANIC_HOT_FILES.contains(&c.rel.as_str())
}

fn concurrency_scope(c: &FileClass) -> bool {
    (c.is_sim_crate() || c.krate == "testkit")
        && c.kind == Kind::Lib
        && !CONCURRENCY_ALLOW_FILES.contains(&c.rel.as_str())
}

fn telemetry_scope(c: &FileClass) -> bool {
    c.is_sim_crate() && c.kind == Kind::Lib
}

struct Suppression {
    line: u32,
    rule: String,
    used: bool,
}

/// Run every applicable rule over one file's source.
pub fn scan_file(source: &str, class: &FileClass) -> FileReport {
    let toks = lex(source);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let lines: Vec<&str> = source.lines().collect();
    let mut s = Scanner {
        toks: &toks,
        code: &code,
        lines: &lines,
        class,
        in_test: Vec::new(),
        test_line_ranges: Vec::new(),
        sups: Vec::new(),
        seen: BTreeSet::new(),
        report: FileReport::default(),
    };
    s.mark_cfg_test();
    s.collect_suppressions();
    s.legacy_rules();
    s.float_determinism();
    s.panic_surface();
    s.unsafe_inventory();
    s.concurrency_readiness();
    s.telemetry_hygiene();
    s.stale_allows();
    s.report.findings.sort_by_key(|f| (f.line, f.rule));
    s.report
}

struct Scanner<'a> {
    toks: &'a [Tok<'a>],
    /// Indices into `toks` of the non-comment tokens.
    code: &'a [usize],
    lines: &'a [&'a str],
    class: &'a FileClass,
    /// Per-`code`-index: inside a `#[cfg(test)]` item?
    in_test: Vec<bool>,
    test_line_ranges: Vec<(u32, u32)>,
    sups: Vec<Suppression>,
    /// (rule, line) dedup so one line trips one rule once.
    seen: BTreeSet<(&'static str, u32)>,
    report: FileReport,
}

impl<'a> Scanner<'a> {
    fn ct(&self, ci: usize) -> Tok<'a> {
        self.toks[self.code[ci]]
    }

    /// Do the code tokens starting at `ci` spell out `pat` exactly?
    fn seq(&self, ci: usize, pat: &[&str]) -> bool {
        ci + pat.len() <= self.code.len()
            && pat
                .iter()
                .enumerate()
                .all(|(k, p)| self.ct(ci + k).text == *p)
    }

    fn src_line(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map_or("", |l| l.trim())
            .to_string()
    }

    fn in_test_line(&self, line: u32) -> bool {
        self.test_line_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Record a finding at `line`, honoring suppressions (for the
    /// suppressible rules) and per-(rule, line) dedup.
    fn push(&mut self, rule: &'static str, line: u32) {
        if SUPPRESSIBLE.contains(&rule) {
            if let Some(s) = self
                .sups
                .iter_mut()
                .find(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
            {
                s.used = true;
                return;
            }
        }
        if self.seen.insert((rule, line)) {
            self.report.findings.push(Finding {
                file: self.class.rel.clone(),
                line,
                rule,
                text: self.src_line(line),
            });
        }
    }

    /// Brace-matched `#[cfg(test)]` item tracking: from the attribute
    /// through the gated item's closing `}` (or `;`), including any
    /// further attributes between the two. Works across nested modules
    /// because the match counts real brace tokens, not text.
    fn mark_cfg_test(&mut self) {
        self.in_test = vec![false; self.code.len()];
        let mut i = 0;
        while i < self.code.len() {
            if !self.seq(i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
                i += 1;
                continue;
            }
            let start = i;
            let mut j = i + 7;
            // Skip stacked attributes (`#[cfg(test)] #[allow(...)] mod …`).
            while j + 1 < self.code.len() && self.ct(j).text == "#" && self.ct(j + 1).text == "[" {
                let mut depth = 0usize;
                let mut k = j + 1;
                while k < self.code.len() {
                    match self.ct(k).text {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
            }
            // The gated item: runs to its matched `}`, or to `;` for a
            // braceless item (`#[cfg(test)] use …;`).
            while j < self.code.len() && self.ct(j).text != "{" && self.ct(j).text != ";" {
                j += 1;
            }
            let end = if j < self.code.len() && self.ct(j).text == "{" {
                let mut depth = 0usize;
                let mut k = j;
                while k < self.code.len() {
                    match self.ct(k).text {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k.min(self.code.len() - 1)
            } else {
                j.min(self.code.len() - 1)
            };
            for flag in &mut self.in_test[start..=end] {
                *flag = true;
            }
            self.test_line_ranges
                .push((self.ct(start).line, self.ct(end).line));
            i = end + 1;
        }
    }

    /// Parse `// ANALYZER: allow(rule, reason)` comments. Malformed or
    /// unknown-rule suppressions become `allow-syntax` findings
    /// immediately; well-formed ones are checked for use at the end.
    fn collect_suppressions(&mut self) {
        let mut bad: Vec<u32> = Vec::new();
        for t in self.toks.iter().filter(|t| t.kind == TokKind::LineComment) {
            let body = t
                .text
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim();
            let Some(rest) = body.strip_prefix("ANALYZER:") else {
                continue;
            };
            let rest = rest.trim();
            let parsed = rest
                .strip_prefix("allow(")
                .and_then(|r| r.strip_suffix(')'))
                .and_then(|inner| inner.split_once(','))
                .map(|(rule, reason)| (rule.trim().to_string(), reason.trim().to_string()));
            match parsed {
                Some((rule, reason))
                    if SUPPRESSIBLE.contains(&rule.as_str()) && !reason.is_empty() =>
                {
                    self.sups.push(Suppression {
                        line: t.line,
                        rule,
                        used: false,
                    });
                }
                _ => bad.push(t.line),
            }
        }
        for line in bad {
            self.push("allow-syntax", line);
        }
    }

    /// Every well-formed suppression must have matched a finding;
    /// leftovers are findings themselves (outside test regions, where
    /// the suppressed construct may be compiled away).
    fn stale_allows(&mut self) {
        let stale: Vec<u32> = self
            .sups
            .iter()
            .filter(|s| !s.used && !self.in_test_line(s.line))
            .map(|s| s.line)
            .collect();
        for line in stale {
            self.push("stale-allow", line);
        }
    }

    /// The five PR-1 rules, ported onto token sequences. Same scopes as
    /// the regex lint: wall-clock / hash-order in sim crates,
    /// stray-rng everywhere, lib-unwrap in library code, fault-mutation
    /// in sim crates outside the fault core (net defines, runtime
    /// dispatches).
    fn legacy_rules(&mut self) {
        let c = self.class;
        let sim = c.is_sim_crate();
        let fault = sim && c.krate != "net" && c.krate != "runtime";
        for i in 0..self.code.len() {
            if self.in_test[i] {
                continue;
            }
            let line = self.ct(i).line;
            let t = self.ct(i);
            if sim {
                if self.seq(i, &["std", "::", "time"])
                    || self.seq(i, &["Instant", "::", "now"])
                    || (t.kind == TokKind::Ident && t.text == "SystemTime")
                {
                    self.push("wall-clock", line);
                }
                if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                    self.push("hash-order", line);
                }
            }
            if (t.kind == TokKind::Ident
                && matches!(t.text, "thread_rng" | "from_entropy" | "OsRng"))
                || self.seq(i, &["rand", "::", "random"])
            {
                self.push("stray-rng", line);
            }
            if c.kind == Kind::Lib && self.seq(i, &[".", "unwrap", "(", ")"]) {
                self.push("lib-unwrap", line);
            }
            if fault
                && t.kind == TokKind::Ident
                && matches!(
                    t.text,
                    "set_spine_failure"
                        | "set_link_down"
                        | "set_link_rate"
                        | "restore_link_rate"
                        | "set_spine_down"
                        | "apply_fault"
                )
            {
                self.push("fault-mutation", line);
            }
        }
    }

    /// Float literals, `f32`/`f64` mentions (types, casts, paths) in
    /// the engine layer outside the reviewed allowlist.
    fn float_determinism(&mut self) {
        if !float_scope(self.class) {
            return;
        }
        for i in 0..self.code.len() {
            if self.in_test[i] {
                continue;
            }
            let t = self.ct(i);
            let hit = t.kind == TokKind::Float
                || (t.kind == TokKind::Ident && matches!(t.text, "f32" | "f64"));
            if hit {
                self.push("float-determinism", t.line);
            }
        }
    }

    /// Panicking constructs and slice indexing in hot-path modules.
    /// A single integer-literal index (`s[0]`) is exempt: it is as
    /// statically checkable as a field access. Computed indices must
    /// argue their invariant in a suppression.
    fn panic_surface(&mut self) {
        if !panic_scope(self.class) {
            return;
        }
        for i in 0..self.code.len() {
            if self.in_test[i] {
                continue;
            }
            let line = self.ct(i).line;
            if self.seq(i, &[".", "unwrap", "("])
                || self.seq(i, &[".", "expect", "("])
                || self.seq(i, &["panic", "!"])
                || self.seq(i, &["unreachable", "!"])
                || self.seq(i, &["todo", "!"])
                || self.seq(i, &["unimplemented", "!"])
            {
                self.push("panic-surface", line);
                continue;
            }
            // Indexing: `[` after an expression tail (identifier, `)`
            // or `]`), i.e. not an array literal/type or attribute.
            if self.ct(i).text == "[" && i > 0 {
                let prev = self.ct(i - 1);
                let indexes = match prev.kind {
                    TokKind::Ident => !NONINDEX_KEYWORDS.contains(&prev.text),
                    TokKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                let literal_index = i + 2 < self.code.len()
                    && self.ct(i + 1).kind == TokKind::Int
                    && self.ct(i + 2).text == "]";
                if indexes && !literal_index {
                    self.push("panic-surface", line);
                }
            }
        }
    }

    /// Every `unsafe` outside test code needs a `SAFETY:` comment —
    /// trailing on the same line or in the comment block immediately
    /// above. Justified sites go to the inventory (compared against
    /// the committed baseline by the caller); unjustified ones are
    /// findings and never enter the inventory.
    fn unsafe_inventory(&mut self) {
        for i in 0..self.code.len() {
            if self.in_test[i] {
                continue;
            }
            let t = self.ct(i);
            if t.kind != TokKind::Ident || t.text != "unsafe" {
                continue;
            }
            match self.safety_comment_for(t.line) {
                Some(safety) => {
                    let site = UnsafeSite {
                        file: self.class.rel.clone(),
                        context: self.src_line(t.line),
                        safety,
                    };
                    if !self.report.unsafe_sites.contains(&site) {
                        self.report.unsafe_sites.push(site);
                    }
                }
                None => self.push("unsafe-inventory", t.line),
            }
        }
    }

    /// The `SAFETY:` text covering an `unsafe` at `line`, if any:
    /// same-line trailing comment, or the contiguous comment run
    /// directly above.
    fn safety_comment_for(&self, line: u32) -> Option<String> {
        let comment_on = |l: u32| -> Option<&Tok<'a>> {
            self.toks.iter().find(|t| t.is_comment() && t.line == l)
        };
        let extract = |t: &Tok<'a>| -> Option<String> {
            t.text
                .split_once("SAFETY:")
                .map(|(_, rest)| rest.trim().trim_end_matches("*/").trim().to_string())
        };
        if let Some(s) = comment_on(line).and_then(&extract) {
            return Some(s);
        }
        let mut l = line.saturating_sub(1);
        while l > 0 {
            let Some(t) = comment_on(l) else { break };
            if let Some(s) = extract(t) {
                return Some(s);
            }
            l -= 1;
        }
        None
    }

    /// Threads, locks, atomics and `static mut` in sim-facing crates:
    /// all of it belongs in testkit's scoped pool until the sharded
    /// engine defines the real concurrency story.
    fn concurrency_readiness(&mut self) {
        if !concurrency_scope(self.class) {
            return;
        }
        for i in 0..self.code.len() {
            if self.in_test[i] {
                continue;
            }
            let t = self.ct(i);
            let line = t.line;
            if self.seq(i, &["static", "mut"])
                || self.seq(i, &["thread", "::", "spawn"])
                || self.seq(i, &["std", "::", "thread"])
                || self.seq(i, &["sync", "::", "atomic"])
            {
                self.push("concurrency-readiness", line);
                continue;
            }
            if t.kind == TokKind::Ident
                && (matches!(t.text, "Mutex" | "RwLock" | "Condvar")
                    || (t.text.starts_with("Atomic") && t.text.len() > "Atomic".len()))
            {
                self.push("concurrency-readiness", line);
            }
        }
    }

    /// `emit_with` argument lists must stay side-effect-free: no
    /// `&mut`, no assignment operators, no `borrow_mut`/`lock`. The
    /// zero-overhead-when-off guarantee assumes skipping the closure
    /// changes nothing.
    fn telemetry_hygiene(&mut self) {
        if !telemetry_scope(self.class) {
            return;
        }
        let mut i = 0;
        while i < self.code.len() {
            let callish = !self.in_test[i]
                && self.ct(i).kind == TokKind::Ident
                && self.ct(i).text == "emit_with"
                && i + 1 < self.code.len()
                && self.ct(i + 1).text == "(";
            if !callish {
                i += 1;
                continue;
            }
            // Paren-match the whole argument list.
            let mut depth = 0usize;
            let mut k = i + 1;
            while k < self.code.len() {
                match self.ct(k).text {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end = k.min(self.code.len() - 1);
            for j in i + 2..end {
                let t = self.ct(j);
                let dirty = (t.text == "&" && self.seq(j, &["&", "mut"]))
                    || (t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text))
                    || (t.kind == TokKind::Ident && matches!(t.text, "borrow_mut" | "lock"));
                if dirty {
                    self.push("telemetry-hygiene", t.line);
                }
            }
            i = end + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use std::path::Path;

    fn scan_at(rel: &str, src: &str) -> Vec<&'static str> {
        let class = classify(Path::new(rel)).expect("fixture path classifies");
        scan_file(src, &class)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn cfg_test_tracking_spans_nested_modules() {
        let src = "fn live() { let _m: HashMap<u8, u8> = HashMap::new(); }\n\
                   #[cfg(test)]\nmod tests {\n  mod inner {\n    fn f() { Some(1).unwrap(); }\n  }\n\
                   \n  fn g() { let _ = std::time::Instant::now(); }\n}\n\
                   fn also_live(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let rules = scan_at("crates/lb/src/t.rs", src);
        assert!(
            rules.contains(&"hash-order"),
            "code before the test mod scans"
        );
        assert_eq!(
            rules.iter().filter(|r| **r == "lib-unwrap").count(),
            1,
            "only the unwrap after the test mod counts: {rules:?}"
        );
        assert!(
            !rules.contains(&"wall-clock"),
            "nested test-mod contents are exempt: {rules:?}"
        );
    }

    #[test]
    fn cfg_test_with_stacked_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn f() { Some(1).unwrap(); } }\n";
        assert!(scan_at("crates/lb/src/t.rs", src).is_empty());
    }

    #[test]
    fn suppression_grammar() {
        // Trailing, with reason: suppressed, not stale.
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"inv\") // ANALYZER: allow(panic-surface, invariant: caller checked)\n}\n";
        assert!(
            scan_at("crates/sim/src/t.rs", src).is_empty(),
            "trailing allow"
        );
        // On the line above.
        let src = "fn f(x: Option<u32>) -> u32 {\n    // ANALYZER: allow(panic-surface, invariant: caller checked)\n    x.expect(\"inv\")\n}\n";
        assert!(
            scan_at("crates/sim/src/t.rs", src).is_empty(),
            "leading allow"
        );
        // Missing reason → allow-syntax (and the finding still fires).
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"inv\") // ANALYZER: allow(panic-surface,)\n}\n";
        let rules = scan_at("crates/sim/src/t.rs", src);
        assert!(rules.contains(&"allow-syntax"), "{rules:?}");
        assert!(rules.contains(&"panic-surface"), "{rules:?}");
        // Unknown rule → allow-syntax.
        let rules = scan_at(
            "crates/sim/src/t.rs",
            "fn f() {} // ANALYZER: allow(no-such-rule, because)\n",
        );
        assert!(rules.contains(&"allow-syntax"), "{rules:?}");
        // Legacy rules are not suppressible.
        let rules = scan_at(
            "crates/sim/src/t.rs",
            "fn f() {} // ANALYZER: allow(hash-order, please)\n",
        );
        assert!(rules.contains(&"allow-syntax"), "{rules:?}");
        // Unused suppression → stale-allow.
        let rules = scan_at(
            "crates/sim/src/t.rs",
            "// ANALYZER: allow(panic-surface, nothing here panics)\nfn f() {}\n",
        );
        assert!(rules.contains(&"stale-allow"), "{rules:?}");
    }

    #[test]
    fn float_rule_scope_and_allowlist() {
        let src = "pub fn f(x: u64) -> f64 { x as f64 * 0.5 }\n";
        assert!(scan_at("crates/sim/src/t.rs", src).contains(&"float-determinism"));
        assert!(scan_at("crates/net/src/t.rs", src).contains(&"float-determinism"));
        // Allowlisted module, algorithmic crates, and non-lib code are out of scope.
        assert!(scan_at("crates/sim/src/rng.rs", src).is_empty());
        assert!(scan_at("crates/core/src/t.rs", src).is_empty());
        assert!(scan_at("crates/sim/tests/t.rs", src).is_empty());
        // The token form: `0..10` is a range, not a float.
        assert!(scan_at("crates/sim/src/t.rs", "fn f() { for _ in 0..10 {} }\n").is_empty());
    }

    #[test]
    fn panic_surface_indexing() {
        // Computed index fires; literal index is exempt.
        assert!(scan_at(
            "crates/sim/src/t.rs",
            "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n"
        )
        .contains(&"panic-surface"));
        assert!(scan_at(
            "crates/sim/src/t.rs",
            "fn f(v: &[u32; 4]) -> u32 { v[0] }\n"
        )
        .is_empty());
        // Array literals and types don't index.
        assert!(scan_at(
            "crates/sim/src/t.rs",
            "fn f() -> [u8; 4] { [0u8; 4] }\nstatic Z: [u8; 2] = [0, 0];\n"
        )
        .is_empty());
        // expect/panic!/unreachable! in scope fire; out of scope don't.
        assert!(
            scan_at("crates/sim/src/t.rs", "fn f() { panic!(\"no\") }\n")
                .contains(&"panic-surface")
        );
        assert!(scan_at(
            "crates/net/src/port.rs",
            "fn f(x: Option<u8>) -> u8 { x.expect(\"inv\") }\n"
        )
        .contains(&"panic-surface"));
        assert!(scan_at("crates/lb/src/t.rs", "fn f() { panic!(\"no\") }\n").is_empty());
    }

    #[test]
    fn unsafe_inventory_wants_safety_comments() {
        let bare = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(scan_at("crates/net/src/t.rs", bare).contains(&"unsafe-inventory"));
        let trailing =
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } // SAFETY: caller upholds validity\n}\n";
        let class = classify(Path::new("crates/net/src/t.rs")).unwrap();
        let rep = scan_file(trailing, &class);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert_eq!(rep.unsafe_sites.len(), 1);
        assert_eq!(rep.unsafe_sites[0].safety, "caller upholds validity");
        let above = "// SAFETY: p is checked non-null by the caller\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let rep = scan_file(above, &class);
        assert!(rep.findings.is_empty());
        assert_eq!(
            rep.unsafe_sites[0].safety,
            "p is checked non-null by the caller"
        );
        // Test-gated unsafe is neither a finding nor inventoried.
        let gated = "#[cfg(test)]\nmod t { fn f(p: *const u8) -> u8 { unsafe { *p } } }\n";
        let rep = scan_file(gated, &class);
        assert!(rep.findings.is_empty() && rep.unsafe_sites.is_empty());
    }

    #[test]
    fn concurrency_readiness_scope() {
        for src in [
            "static mut COUNTER: u64 = 0;\n",
            "pub fn f() { let _h = std::thread::spawn(|| {}); }\n",
            "use std::sync::Mutex;\n",
            "use std::sync::atomic::AtomicUsize;\n",
        ] {
            assert!(
                scan_at("crates/sim/src/t.rs", src).contains(&"concurrency-readiness"),
                "should fire on: {src}"
            );
        }
        // The sanctioned exceptions: testkit's pool file and the
        // sharded-engine files (digest offload, window-barrier drain,
        // run_parallel surface); bench is out of scope entirely.
        let src = "use std::sync::Mutex;\n";
        assert!(scan_at("crates/testkit/src/run.rs", src).is_empty());
        assert!(scan_at("crates/net/src/audit.rs", src).is_empty());
        assert!(scan_at("crates/net/src/shard.rs", src).is_empty());
        assert!(scan_at("crates/runtime/src/sim.rs", src).is_empty());
        assert!(scan_at("crates/testkit/src/spec.rs", src).contains(&"concurrency-readiness"));
        assert!(scan_at("crates/net/src/fabric.rs", src).contains(&"concurrency-readiness"));
        assert!(scan_at("crates/bench/src/t.rs", src).is_empty());
    }

    #[test]
    fn telemetry_hygiene_flags_side_effects() {
        let dirty = "fn f(sink: &Sink, n: &mut u64) {\n    sink.emit_with(POINT, || { *n += 1; make_record() });\n}\n";
        assert!(scan_at("crates/core/src/t.rs", dirty).contains(&"telemetry-hygiene"));
        let dirty2 = "fn f(sink: &Sink, c: &Cell) {\n    sink.emit_with(POINT, || record(c.state.borrow_mut()));\n}\n";
        assert!(scan_at("crates/core/src/t.rs", dirty2).contains(&"telemetry-hygiene"));
        let clean = "fn f(sink: &Sink, a: u64) {\n    sink.emit_with(POINT, || Record { a, b: a == 3, c: a <= 9 });\n}\n";
        assert!(
            scan_at("crates/core/src/t.rs", clean).is_empty(),
            "comparisons are not assignments"
        );
        // `&mut` outside the emit_with argument list is fine.
        let outside = "fn f(sink: &Sink, n: &mut u64) {\n    *n += 1;\n    sink.emit_with(POINT, || Record { a: 1 });\n}\n";
        assert!(scan_at("crates/core/src/t.rs", outside).is_empty());
    }

    #[test]
    fn findings_dedup_per_rule_and_line() {
        let src = "fn f(a: f64, b: f64) -> f64 { a * 2.0 + b * 3.0 }\n";
        let class = classify(Path::new("crates/sim/src/t.rs")).unwrap();
        let rep = scan_file(src, &class);
        assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
    }
}
