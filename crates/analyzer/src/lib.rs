//! `hermes-analyzer` — token-level determinism & concurrency-readiness
//! analysis for the Hermes workspace (DESIGN.md §13).
//!
//! The simulator's core promise is that a (config, seed) pair fully
//! determines every packet of a run. This crate is the static half of
//! defending that promise: a dependency-free Rust [`lexer`] feeds a
//! scoped [`rules`] engine that knows the workspace layout
//! ([`classify`]), tracks `#[cfg(test)]` regions by brace-matched
//! tokens, honors per-site `// ANALYZER: allow(rule, reason)`
//! suppressions, and diffs the tree's `unsafe` inventory against the
//! committed [`baseline`]. The [`fixtures`] module carries the
//! `--self-test` corpus proving every rule class can both trip and
//! stay quiet.
//!
//! The driver is `cargo run -p xtask -- analyze`; this crate does the
//! work so the checks are also callable from unit tests (the
//! workspace-cleanliness test below is tier-1).

pub mod baseline;
pub mod classify;
pub mod fixtures;
pub mod lexer;
pub mod rules;

use classify::{classify, collect_rs_files, SKIP_CRATES};
use rules::{scan_file, Finding, UnsafeSite};
use std::path::Path;

pub use classify::workspace_root;
pub use rules::{rule_why, RULE_WHY};

/// The result of analyzing a whole workspace tree.
pub struct Analysis {
    /// Rule violations plus baseline drift, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Every justified `unsafe` site found in the tree.
    pub inventory: Vec<UnsafeSite>,
    /// Files actually scanned (recognized layout, non-skipped crate).
    pub scanned: usize,
    /// Whether `--update-baseline` rewrote the committed file.
    pub baseline_written: bool,
}

impl Analysis {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scan every recognized source file under `root`, then reconcile the
/// `unsafe` inventory with `analyzer_baseline.json` — rewriting it when
/// `update_baseline` is set, diffing against it (as findings) when not.
pub fn analyze_workspace(root: &Path, update_baseline: bool) -> Result<Analysis, String> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    if files.is_empty() {
        return Err(format!("no .rs files under {}", root.display()));
    }
    let mut findings = Vec::new();
    let mut inventory: Vec<UnsafeSite> = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let Some(class) = classify(rel) else { continue };
        if SKIP_CRATES.contains(&class.krate.as_str()) {
            continue;
        }
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        scanned += 1;
        let rep = scan_file(&source, &class);
        findings.extend(rep.findings);
        inventory.extend(rep.unsafe_sites);
    }
    inventory.sort();
    let mut baseline_written = false;
    if update_baseline {
        let path = root.join(baseline::BASELINE_FILE);
        std::fs::write(&path, baseline::to_json(&inventory))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        baseline_written = true;
    } else {
        let committed = baseline::load(root)?;
        findings.extend(baseline::diff(&inventory, &committed));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Analysis {
        findings,
        inventory,
        scanned,
        baseline_written,
    })
}

/// The machine-readable report `analyze --json <out>` writes (and CI
/// uploads as an artifact). Hand-rolled JSON; no serde in the tree.
pub fn report_json(a: &Analysis) -> String {
    use baseline::esc;
    let findings: Vec<String> = a
        .findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"text\": \"{}\"}}",
                esc(&f.file),
                f.line,
                f.rule,
                esc(&f.text)
            )
        })
        .collect();
    let inventory: Vec<String> = a
        .inventory
        .iter()
        .map(|s| {
            format!(
                "    {{\"file\": \"{}\", \"context\": \"{}\", \"safety\": \"{}\"}}",
                esc(&s.file),
                esc(&s.context),
                esc(&s.safety)
            )
        })
        .collect();
    let arr = |v: &[String]| {
        if v.is_empty() {
            String::from("[]")
        } else {
            format!("[\n{}\n  ]", v.join(",\n"))
        }
    };
    format!(
        "{{\n  \"generated_by\": \"cargo run -p xtask -- analyze\",\n  \"files_scanned\": {},\n  \
         \"clean\": {},\n  \"findings\": {},\n  \"unsafe_inventory\": {}\n}}\n",
        a.scanned,
        a.clean(),
        arr(&findings),
        arr(&inventory),
    )
}

/// One fixture's outcome in `analyze --self-test`.
pub struct SelfTestOutcome {
    pub label: String,
    pub ok: bool,
    pub detail: String,
}

/// Run every bad and clean fixture through the real engine. Bad
/// fixtures must trip their rule; clean fixtures must produce zero
/// findings of any rule.
pub fn self_test() -> Vec<SelfTestOutcome> {
    let mut out = Vec::new();
    for f in fixtures::BAD_FIXTURES {
        let class = classify(Path::new(f.path)).expect("fixture path classifies");
        let rep = scan_file(f.src, &class);
        let fired: Vec<&str> = rep.findings.iter().map(|x| x.rule).collect();
        let ok = fired.contains(&f.rule);
        out.push(SelfTestOutcome {
            label: format!("bad [{}] {}", f.rule, f.path),
            ok,
            detail: if ok {
                String::from("tripped")
            } else {
                format!("NOT tripped (fired: {fired:?})")
            },
        });
    }
    for f in fixtures::CLEAN_FIXTURES {
        let class = classify(Path::new(f.path)).expect("fixture path classifies");
        let rep = scan_file(f.src, &class);
        let ok = rep.findings.is_empty();
        out.push(SelfTestOutcome {
            label: format!("clean {} ({})", f.name, f.path),
            ok,
            detail: if ok {
                String::from("quiet")
            } else {
                format!(
                    "false positive: {:?}",
                    rep.findings
                        .iter()
                        .map(|x| (x.rule, x.line))
                        .collect::<Vec<_>>()
                )
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use classify::{FileClass, Kind};

    fn sim_lib_class() -> FileClass {
        classify(Path::new("crates/sim/src/fixture.rs")).expect("classifies")
    }

    /// Differential test for the PR-1 port: the exact bad/clean sources
    /// the regex lint shipped with, scanned as sim library code (where
    /// every legacy rule applies), must behave identically under the
    /// token engine — each bad source fires its rule, each clean source
    /// fires nothing at all.
    #[test]
    fn pr1_regex_lint_fixtures_port_unchanged() {
        const PR1_BAD: &[(&str, &str)] = &[
            ("wall-clock", "fn f() { let _t = std::time::Instant::now(); }\n"),
            ("wall-clock", "fn f() { let _t = SystemTime::now(); }\n"),
            (
                "hash-order",
                "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u32 { m.len() as u32 }\n",
            ),
            ("stray-rng", "fn f() -> u64 { rand::random() }\n"),
            ("stray-rng", "fn f() { let mut _r = thread_rng(); }\n"),
            ("lib-unwrap", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"),
            (
                "fault-mutation",
                "fn f(fab: &mut Fabric) { fab.set_spine_down(SpineId(0), true); }\n",
            ),
            (
                "fault-mutation",
                "fn f(fab: &mut Fabric, a: &FaultAction) { fab.apply_fault(a); }\n",
            ),
        ];
        const PR1_CLEAN: &[&str] = &[
            "// std::time::Instant::now() is banned here\nfn f() {}\n",
            "fn f() -> &'static str { \"HashMap iteration order\" }\n",
            "/* thread_rng() would break determinism */\nfn f() {}\n",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
            "fn lifetime<'a>(x: &'a u64) -> &'a u64 { x }\n",
            "// never call apply_fault directly; schedule it via a FaultPlan\nfn f() {}\n",
        ];
        let class = sim_lib_class();
        for (rule, src) in PR1_BAD {
            let fired: Vec<&str> = scan_file(src, &class)
                .findings
                .iter()
                .map(|f| f.rule)
                .collect();
            assert!(
                fired.contains(rule),
                "[{rule}] not fired (got {fired:?}) on:\n{src}"
            );
        }
        for src in PR1_CLEAN {
            let rep = scan_file(src, &class);
            assert!(
                rep.findings.is_empty(),
                "false positive {:?} on:\n{src}",
                rep.findings.iter().map(|f| f.rule).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn self_test_fixtures_all_pass() {
        let outcomes = self_test();
        let failed: Vec<String> = outcomes
            .iter()
            .filter(|o| !o.ok)
            .map(|o| format!("{}: {}", o.label, o.detail))
            .collect();
        assert!(
            failed.is_empty(),
            "self-test failures:\n{}",
            failed.join("\n")
        );
        // Every rule class has at least one bad fixture.
        for rule in [
            "wall-clock",
            "hash-order",
            "stray-rng",
            "lib-unwrap",
            "fault-mutation",
            "float-determinism",
            "panic-surface",
            "unsafe-inventory",
            "concurrency-readiness",
            "telemetry-hygiene",
            "allow-syntax",
            "stale-allow",
        ] {
            assert!(
                fixtures::BAD_FIXTURES.iter().any(|f| f.rule == rule),
                "no bad fixture for [{rule}]"
            );
        }
    }

    /// The tier-1 enforcement test: the real tree passes its own
    /// analyzer, and the committed baseline matches the tree's actual
    /// (empty, while `unsafe_code = \"deny\"` stands) unsafe inventory.
    #[test]
    fn whole_workspace_is_clean() {
        let root = workspace_root();
        let a = analyze_workspace(&root, false).expect("analyzable workspace");
        assert!(a.scanned > 0, "workspace sources not found");
        let report: Vec<String> = a
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.text))
            .collect();
        assert!(a.clean(), "analyzer findings:\n{}", report.join("\n"));
    }

    /// The tracing layer records *sim* time, and the wheel/pool modules
    /// are the hot path: all must be covered by the engine's scopes.
    #[test]
    fn hot_and_telemetry_files_are_covered() {
        for rel in [
            "crates/telemetry/src/lib.rs",
            "crates/sim/src/wheel.rs",
            "crates/net/src/pool.rs",
        ] {
            let class = classify(Path::new(rel)).expect("recognized layout");
            assert!(class.is_sim_crate(), "{rel} must be analyzer-covered");
            assert_eq!(class.kind, Kind::Lib, "{rel} is library code");
        }
        // And a wall-clock read inside telemetry must trip.
        let class = classify(Path::new("crates/telemetry/src/x.rs")).unwrap();
        let rep = scan_file(
            "fn stamp() -> u128 { std::time::Instant::now().elapsed().as_nanos() }\n",
            &class,
        );
        assert!(rep.findings.iter().any(|f| f.rule == "wall-clock"));
    }

    #[test]
    fn report_json_shape() {
        let a = Analysis {
            findings: vec![Finding {
                file: "crates/sim/src/x.rs".into(),
                line: 3,
                rule: "panic-surface",
                text: "v[\"k\"]".into(),
            }],
            inventory: vec![],
            scanned: 7,
            baseline_written: false,
        };
        let json = report_json(&a);
        assert!(json.contains("\"files_scanned\": 7"), "{json}");
        assert!(json.contains("\"clean\": false"), "{json}");
        assert!(json.contains("\"rule\": \"panic-surface\""), "{json}");
        assert!(json.contains("v[\\\"k\\\"]"), "escaped quote: {json}");
        assert!(json.contains("\"unsafe_inventory\": []"), "{json}");
        let clean = Analysis {
            findings: vec![],
            inventory: vec![],
            scanned: 7,
            baseline_written: false,
        };
        assert!(report_json(&clean).contains("\"clean\": true"));
    }

    #[test]
    fn every_rule_has_a_why() {
        for f in fixtures::BAD_FIXTURES {
            assert!(!rule_why(f.rule).is_empty(), "[{}] has no why text", f.rule);
        }
    }
}
