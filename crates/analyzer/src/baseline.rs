//! The committed unsafe inventory: `analyzer_baseline.json` at the
//! workspace root.
//!
//! The file is the reviewed set of `unsafe` sites the workspace is
//! allowed to contain. The analyzer diffs the tree's current inventory
//! against it both ways — a site in the tree but not the baseline is a
//! finding ("new unsafe: review it, then `--update-baseline`"), and a
//! baseline entry with no matching site is a finding too (stale entries
//! would let unsafe creep back silently). Entries are keyed by content
//! (file, context line, SAFETY text), never line numbers, so pure code
//! motion does not churn the file.
//!
//! Hand-rolled JSON both ways: the workspace deliberately vendors no
//! serde, and the document is our own fixed-shape output.

use crate::rules::{Finding, UnsafeSite};
use std::path::Path;

pub const BASELINE_FILE: &str = "analyzer_baseline.json";

/// Serialize an inventory to the committed JSON shape.
pub fn to_json(sites: &[UnsafeSite]) -> String {
    let mut entries = Vec::new();
    for s in sites {
        entries.push(format!(
            "    {{\"file\": \"{}\", \"context\": \"{}\", \"safety\": \"{}\"}}",
            esc(&s.file),
            esc(&s.context),
            esc(&s.safety)
        ));
    }
    format!(
        "{{\n  \"comment\": \"Reviewed unsafe inventory; regenerate with `cargo run -p xtask -- \
         analyze --update-baseline` after review. Every entry's safety field is its reason.\",\n  \
         \"unsafe_sites\": {}\n}}\n",
        if entries.is_empty() {
            String::from("[]")
        } else {
            format!("[\n{}\n  ]", entries.join(",\n"))
        }
    )
}

/// Parse the committed baseline. A missing file is an empty baseline;
/// a malformed one is an error (refuse to guess what was reviewed).
pub fn load(root: &Path) -> Result<Vec<UnsafeSite>, String> {
    let path = root.join(BASELINE_FILE);
    let Ok(doc) = std::fs::read_to_string(&path) else {
        return Ok(Vec::new());
    };
    parse(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

/// Diff the tree inventory against the baseline, as findings.
pub fn diff(current: &[UnsafeSite], baseline: &[UnsafeSite]) -> Vec<Finding> {
    let mut out = Vec::new();
    for s in current {
        if !baseline.contains(s) {
            out.push(Finding {
                file: s.file.clone(),
                line: 0,
                rule: "unsafe-inventory",
                text: format!(
                    "new unsafe site not in {BASELINE_FILE} (review, then --update-baseline): {}",
                    s.context
                ),
            });
        }
    }
    for s in baseline {
        if !current.contains(s) {
            out.push(Finding {
                file: s.file.clone(),
                line: 0,
                rule: "unsafe-inventory",
                text: format!(
                    "stale {BASELINE_FILE} entry with no matching source site: {}",
                    s.context
                ),
            });
        }
    }
    out
}

pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                // `esc` writes exactly four hex digits, no braces.
                let hex: String = it.by_ref().take(4).collect();
                if let Ok(v) = u32::from_str_radix(&hex, 16) {
                    if let Some(ch) = char::from_u32(v) {
                        out.push(ch);
                    }
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Minimal parser for the one shape `to_json` writes: an object with an
/// `unsafe_sites` array of flat string-field objects.
fn parse(doc: &str) -> Result<Vec<UnsafeSite>, String> {
    let arr = doc
        .split("\"unsafe_sites\"")
        .nth(1)
        .ok_or("missing \"unsafe_sites\" key")?;
    let open = arr.find('[').ok_or("missing [ after unsafe_sites")?;
    let mut sites = Vec::new();
    let mut rest = &arr[open + 1..];
    while let Some(obj_open) = rest.find('{') {
        // A `]` before the next `{` ends the array.
        if rest[..obj_open].contains(']') {
            break;
        }
        let (fields, after) = parse_object(&rest[obj_open + 1..])?;
        let get = |k: &str| -> Result<String, String> {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("entry missing \"{k}\""))
        };
        sites.push(UnsafeSite {
            file: get("file")?,
            context: get("context")?,
            safety: get("safety")?,
        });
        rest = after;
    }
    Ok(sites)
}

/// The string fields of one parsed object, as `(key, value)` pairs.
type Fields = Vec<(String, String)>;

/// Parse `"k": "v", …}` returning the fields and the text after `}`.
fn parse_object(s: &str) -> Result<(Fields, &str), String> {
    let mut fields = Vec::new();
    let mut rest = s;
    loop {
        let rest_trim = rest.trim_start();
        if let Some(after) = rest_trim.strip_prefix('}') {
            return Ok((fields, after));
        }
        let rest2 = rest_trim
            .strip_prefix(',')
            .unwrap_or(rest_trim)
            .trim_start();
        let (key, after_key) = parse_string(rest2)?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or("expected : after key")?;
        let (val, after_val) = parse_string(after_colon.trim_start())?;
        fields.push((key, val));
        rest = after_val;
    }
}

/// Parse a leading `"…"` (with escapes), returning it unescaped plus
/// the remaining text.
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let body = s.strip_prefix('"').ok_or("expected string")?;
    let b = body.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return Ok((unesc(&body[..i]), &body[i + 1..])),
            _ => i += 1,
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(file: &str, context: &str, safety: &str) -> UnsafeSite {
        UnsafeSite {
            file: file.into(),
            context: context.into(),
            safety: safety.into(),
        }
    }

    #[test]
    fn json_round_trips() {
        let sites = vec![
            site(
                "crates/net/src/pool.rs",
                "unsafe { slot.assume_init() } // SAFETY: written above",
                "written above, index \"checked\"",
            ),
            site("crates/sim/src/x.rs", "unsafe fn y()", "caller\ncontract"),
        ];
        let doc = to_json(&sites);
        assert_eq!(parse(&doc).expect("parses"), sites);
    }

    #[test]
    fn empty_inventory_round_trips() {
        let doc = to_json(&[]);
        assert_eq!(parse(&doc).expect("parses"), Vec::<UnsafeSite>::new());
        assert!(doc.contains("\"unsafe_sites\": []"));
    }

    #[test]
    fn diff_reports_both_directions() {
        let a = site("f.rs", "unsafe { a() }", "a ok");
        let b = site("f.rs", "unsafe { b() }", "b ok");
        let d = diff(std::slice::from_ref(&a), std::slice::from_ref(&b));
        assert_eq!(d.len(), 2);
        assert!(d[0].text.contains("new unsafe site"), "{}", d[0].text);
        assert!(d[1].text.contains("stale"), "{}", d[1].text);
        assert!(diff(std::slice::from_ref(&a), std::slice::from_ref(&a)).is_empty());
    }
}
