//! Self-test fixtures: one or more deliberately-bad sources per rule
//! class, plus clean sources that must not fire. `analyze --self-test`
//! runs all of them through the real engine, proving every rule can
//! both trip and stay quiet — the same discipline the conformance
//! suite applies to its checkers.
//!
//! Each fixture carries a synthetic workspace-relative path so it is
//! scoped exactly like a real file (`classify` derives crate and kind
//! from it). The legacy five use the same sources as PR-1's regex lint,
//! which doubles as the differential test for the token-based port.

/// A source that must trip `rule` when scanned as `path`.
pub struct BadFixture {
    pub rule: &'static str,
    pub path: &'static str,
    pub src: &'static str,
}

/// A source that must produce zero findings when scanned as `path`.
pub struct CleanFixture {
    pub name: &'static str,
    pub path: &'static str,
    pub src: &'static str,
}

const SIM_LIB: &str = "crates/sim/src/fixture.rs";

pub const BAD_FIXTURES: &[BadFixture] = &[
    // ---- the five PR-1 rules, same sources as the regex lint --------
    BadFixture {
        rule: "wall-clock",
        path: SIM_LIB,
        src: "fn f() { let _t = std::time::Instant::now(); }\n",
    },
    BadFixture {
        rule: "wall-clock",
        path: SIM_LIB,
        src: "fn f() { let _t = SystemTime::now(); }\n",
    },
    BadFixture {
        rule: "wall-clock",
        path: "crates/telemetry/src/fixture.rs",
        src: "fn stamp() -> u128 { std::time::Instant::now().elapsed().as_nanos() }\n",
    },
    BadFixture {
        rule: "hash-order",
        path: SIM_LIB,
        src: "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u32 { m.len() as u32 }\n",
    },
    BadFixture {
        rule: "stray-rng",
        path: SIM_LIB,
        src: "fn f() -> u64 { rand::random() }\n",
    },
    BadFixture {
        rule: "stray-rng",
        path: SIM_LIB,
        src: "fn f() { let mut _r = thread_rng(); }\n",
    },
    BadFixture {
        rule: "lib-unwrap",
        path: "crates/lb/src/fixture.rs",
        src: "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    },
    BadFixture {
        rule: "fault-mutation",
        path: "crates/lb/src/fixture.rs",
        src: "fn f(fab: &mut Fabric) { fab.set_spine_down(SpineId(0), true); }\n",
    },
    BadFixture {
        rule: "fault-mutation",
        path: "crates/lb/src/fixture.rs",
        src: "fn f(fab: &mut Fabric, a: &FaultAction) { fab.apply_fault(a); }\n",
    },
    // ---- float-determinism ------------------------------------------
    BadFixture {
        rule: "float-determinism",
        path: SIM_LIB,
        src: "pub fn ewma(prev: f64, x: u64) -> f64 { prev * 0.9 + (x as f64) * 0.1 }\n",
    },
    BadFixture {
        rule: "float-determinism",
        path: "crates/net/src/fixture.rs",
        src: "pub fn util(bytes: u64, cap: u64) -> f32 { bytes as f32 / cap as f32 }\n",
    },
    // ---- panic-surface ----------------------------------------------
    BadFixture {
        rule: "panic-surface",
        path: SIM_LIB,
        src: "pub fn pop(v: &mut Vec<u32>) -> u32 { v.pop().expect(\"non-empty\") }\n",
    },
    BadFixture {
        rule: "panic-surface",
        path: SIM_LIB,
        src: "pub fn at(v: &[u32], i: usize) -> u32 { v[i] }\n",
    },
    BadFixture {
        rule: "panic-surface",
        path: "crates/net/src/port.rs",
        src: "pub fn f(state: u8) { if state > 3 { panic!(\"bad state\") } }\n",
    },
    BadFixture {
        rule: "panic-surface",
        path: SIM_LIB,
        src: "pub fn f(x: u8) -> u8 { match x { 0 => 1, _ => unreachable!() } }\n",
    },
    // ---- unsafe-inventory -------------------------------------------
    BadFixture {
        rule: "unsafe-inventory",
        path: "crates/net/src/fixture.rs",
        src: "pub fn read(p: *const u8) -> u8 { unsafe { *p } }\n",
    },
    // ---- concurrency-readiness --------------------------------------
    BadFixture {
        rule: "concurrency-readiness",
        path: SIM_LIB,
        src: "static mut TICKS: u64 = 0;\n",
    },
    BadFixture {
        rule: "concurrency-readiness",
        path: SIM_LIB,
        src: "pub fn f() { std::thread::spawn(|| {}); }\n",
    },
    BadFixture {
        rule: "concurrency-readiness",
        path: "crates/testkit/src/fixture.rs",
        src: "use std::sync::Mutex;\npub struct S { m: Mutex<u32> }\n",
    },
    BadFixture {
        rule: "concurrency-readiness",
        path: "crates/core/src/fixture.rs",
        src: "use std::sync::atomic::AtomicUsize;\n",
    },
    // ---- telemetry-hygiene ------------------------------------------
    BadFixture {
        rule: "telemetry-hygiene",
        path: "crates/core/src/fixture.rs",
        src: "fn f(sink: &Sink, n: &mut u64) {\n    sink.emit_with(POINT, || { *n += 1; rec() });\n}\n",
    },
    BadFixture {
        rule: "telemetry-hygiene",
        path: "crates/core/src/fixture.rs",
        src: "fn f(sink: &Sink, s: &State) {\n    sink.emit_with(POINT, || rec(s.inner.borrow_mut().take()));\n}\n",
    },
    // ---- suppression meta-rules -------------------------------------
    BadFixture {
        rule: "allow-syntax",
        path: SIM_LIB,
        src: "pub fn at(v: &[u32], i: usize) -> u32 { v[i] } // ANALYZER: allow(panic-surface,)\n",
    },
    BadFixture {
        rule: "allow-syntax",
        path: SIM_LIB,
        src: "fn f() {} // ANALYZER: allow(made-up-rule, reason text)\n",
    },
    BadFixture {
        rule: "stale-allow",
        path: SIM_LIB,
        src: "// ANALYZER: allow(panic-surface, nothing here can panic)\nfn f() {}\n",
    },
];

pub const CLEAN_FIXTURES: &[CleanFixture] = &[
    // ---- the PR-1 clean set (comments/strings/test regions) ---------
    CleanFixture {
        name: "banned token in line comment",
        path: SIM_LIB,
        src: "// std::time::Instant::now() is banned here\nfn f() {}\n",
    },
    CleanFixture {
        name: "banned token in string literal",
        path: SIM_LIB,
        src: "fn f() -> &'static str { \"HashMap iteration order\" }\n",
    },
    CleanFixture {
        name: "banned token in block comment",
        path: SIM_LIB,
        src: "/* thread_rng() would break determinism */\nfn f() {}\n",
    },
    CleanFixture {
        name: "unwrap inside #[cfg(test)]",
        path: SIM_LIB,
        src: "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
    },
    CleanFixture {
        name: "lifetimes are not char literals",
        path: SIM_LIB,
        src: "fn lifetime<'a>(x: &'a u64) -> &'a u64 { x }\n",
    },
    CleanFixture {
        name: "fault op named in comment only",
        path: SIM_LIB,
        src: "// never call apply_fault directly; schedule it via a FaultPlan\nfn f() {}\n",
    },
    // ---- token-level cases the regex lint could not express ---------
    CleanFixture {
        name: "banned token inside raw string",
        path: SIM_LIB,
        src: "fn f() -> &'static str { r#\"thread_rng() and \"HashMap\" // not code\"# }\n",
    },
    CleanFixture {
        name: "integer range is not a float",
        path: SIM_LIB,
        src: "pub fn f() -> u64 { (0..10).sum() }\n",
    },
    CleanFixture {
        name: "float math in allowlisted module",
        path: "crates/sim/src/rng.rs",
        src: "pub fn unit(x: u64) -> f64 { (x >> 11) as f64 * (1.0 / 9007199254740992.0) }\n",
    },
    CleanFixture {
        name: "float math in algorithmic crate (out of engine scope)",
        path: "crates/lb/src/fixture.rs",
        src: "pub fn score(a: f64, b: f64) -> f64 { a * 0.5 + b }\n",
    },
    CleanFixture {
        name: "literal index is exempt from panic-surface",
        path: SIM_LIB,
        src: "pub struct S { s: [u64; 4] }\nimpl S { pub fn lo(&self) -> u64 { self.s[0] } }\n",
    },
    CleanFixture {
        name: "suppressed computed index with reason",
        path: SIM_LIB,
        src: "pub fn at(v: &[u64; 8], i: usize) -> u64 {\n    v[i & 7] // ANALYZER: allow(panic-surface, masked to the array length)\n}\n",
    },
    CleanFixture {
        name: "unsafe with trailing SAFETY comment",
        path: "crates/net/src/fixture.rs",
        src: "pub fn read(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: caller guarantees p is valid for reads\n}\n",
    },
    CleanFixture {
        name: "unsafe with SAFETY block above",
        path: "crates/net/src/fixture.rs",
        src: "// SAFETY: the slot was initialized by the preceding write;\n// the index is bounds-checked by the caller.\npub fn read(p: *const u8) -> u8 { unsafe { *p } }\n",
    },
    CleanFixture {
        name: "unsafe inside #[cfg(test)] is out of scope",
        path: "crates/net/src/fixture.rs",
        src: "#[cfg(test)]\nmod t {\n    fn f(p: *const u8) -> u8 { unsafe { *p } }\n}\n",
    },
    CleanFixture {
        name: "Mutex in testkit's scoped pool file",
        path: "crates/testkit/src/run.rs",
        src: "use std::sync::Mutex;\npub struct Pool { q: Mutex<Vec<u32>> }\n",
    },
    CleanFixture {
        name: "Mutex in bench (not a sim-facing crate)",
        path: "crates/bench/src/fixture.rs",
        src: "use std::sync::Mutex;\n",
    },
    CleanFixture {
        name: "side-effect-free emit_with closure",
        path: "crates/core/src/fixture.rs",
        src: "fn f(sink: &Sink, a: u64, ok: bool) {\n    sink.emit_with(POINT, || Record { a, b: ok, c: a == 3, d: a <= 9 });\n}\n",
    },
    CleanFixture {
        name: "mutation outside the emit_with call",
        path: "crates/core/src/fixture.rs",
        src: "fn f(sink: &Sink, n: &mut u64) {\n    *n += 1;\n    sink.emit_with(POINT, || Record { a: 1 });\n}\n",
    },
];
