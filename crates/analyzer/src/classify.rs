//! Workspace layout: mapping a source path to the crate and code kind
//! the rule scopes are expressed in.

use std::path::{Path, PathBuf};

/// Crates whose behavior must be a pure function of (config, seed).
pub const SIM_CRATES: &[&str] = &[
    "sim",
    "net",
    "transport",
    "core",
    "lb",
    "runtime",
    "workload",
    "telemetry",
];

/// Crate directories the analyzer skips entirely: vendored stand-ins
/// for third-party crates (not our code) and the tooling itself.
pub const SKIP_CRATES: &[&str] = &["proptest", "criterion", "xtask", "analyzer"];

/// What part of a crate a file belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// `src/` excluding `src/bin/` — code other crates can link.
    Lib,
    /// `src/bin/` or `src/main.rs` — executable entry points.
    Bin,
    /// `tests/`, `examples/`, `benches/` — never shipped.
    TestOrExample,
}

/// Where a source file sits in the workspace.
#[derive(Clone, Debug)]
pub struct FileClass {
    /// Crate directory name (`"sim"`, `"bench"`, …); `"root"` for the
    /// top-level `hermes-repro` package.
    pub krate: String,
    pub kind: Kind,
    /// Workspace-relative path with `/` separators, for per-file rule
    /// scopes (allowlists name exact files).
    pub rel: String,
}

impl FileClass {
    pub fn is_sim_crate(&self) -> bool {
        SIM_CRATES.contains(&self.krate.as_str())
    }
}

/// Map a workspace-relative path to its crate and kind. Returns `None`
/// for files outside any crate layout we recognize.
pub fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let (krate, rest) = match parts.as_slice() {
        ["crates", name, rest @ ..] => ((*name).to_string(), rest),
        rest => ("root".to_string(), rest),
    };
    let kind = match rest {
        ["src", "bin", ..] | ["src", "main.rs"] => Kind::Bin,
        ["src", ..] => Kind::Lib,
        ["tests", ..] | ["examples", ..] | ["benches", ..] => Kind::TestOrExample,
        _ => return None,
    };
    Some(FileClass {
        krate,
        kind,
        rel: parts.join("/"),
    })
}

/// Recursively gather `.rs` files, in sorted order for stable output.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// The workspace root, two levels above this crate's manifest.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyzer sits two levels below the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_workspace_layout() {
        let c = classify(Path::new("crates/net/src/fabric.rs")).expect("classifies");
        assert_eq!(c.krate, "net");
        assert_eq!(c.kind, Kind::Lib);
        assert_eq!(c.rel, "crates/net/src/fabric.rs");
        let c = classify(Path::new("crates/bench/src/bin/fig9.rs")).expect("classifies");
        assert_eq!(c.kind, Kind::Bin);
        let c = classify(Path::new("src/bin/hermes-cli.rs")).expect("classifies");
        assert_eq!(c.krate, "root");
        assert_eq!(c.kind, Kind::Bin);
        let c = classify(Path::new("tests/scenarios.rs")).expect("classifies");
        assert_eq!(c.kind, Kind::TestOrExample);
        assert!(classify(Path::new("README.md")).is_none());
    }

    #[test]
    fn sim_crates_cover_the_stack_and_skip_tooling() {
        for k in ["sim", "net", "telemetry"] {
            let rel = format!("crates/{k}/src/lib.rs");
            assert!(classify(Path::new(&rel)).unwrap().is_sim_crate());
        }
        assert!(!classify(Path::new("crates/bench/src/lib.rs"))
            .unwrap()
            .is_sim_crate());
        assert!(SKIP_CRATES.contains(&"analyzer"), "never scan ourselves");
    }
}
