//! A dependency-free Rust lexer, sufficient for source-level analysis.
//!
//! Produces a flat token stream with 1-based line numbers. It is not a
//! full grammar — no parse tree — but it gets every *lexical* boundary
//! right that a scanner can trip over: nested block comments, raw
//! strings (`r"…"`, `r#"…"#`, and byte variants), byte strings and byte
//! chars, char literals vs lifetimes, raw identifiers (`r#match`),
//! float literals vs range expressions (`1.0` vs `1..2`), and
//! multi-character operators (so a bare `=` token really is an
//! assignment, never half of `==`/`=>`/`<=`).
//!
//! Comments are kept as tokens rather than discarded: the rule engine
//! reads them for `// SAFETY:` justifications and
//! `// ANALYZER: allow(rule, reason)` suppressions.

/// Lexical class of one token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Integer literal (any base, with suffix/underscores).
    Int,
    /// Floating-point literal (`1.0`, `1e9`, `2f64`, …).
    Float,
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// One operator or delimiter (multi-char ops are single tokens).
    Punct,
    /// `// …` comment, including doc comments (`///`, `//!`).
    LineComment,
    /// `/* … */` comment (nesting handled), including `/** … */`.
    BlockComment,
}

/// One token: class, exact source text, and the line it starts on.
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok<'_> {
    /// Whether this token is a comment (trivia for most rules).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators, longest first so prefixes never shadow.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Unterminated literals and comments are tolerated
/// (the token simply runs to end of input): the analyzer must degrade
/// gracefully on code mid-edit, not panic.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Tok<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.try_prefixed_literal() => {}
                _ if is_ident_start(c) => self.ident(),
                b'"' => self.string(self.i),
                b'\'' => self.quote(),
                _ if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.push(Tok {
            kind,
            text: &self.src[start..self.i],
            line,
        });
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(TokKind::LineComment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut depth = 0usize;
        while self.i < self.b.len() {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.i += 1;
            }
        }
        self.push(TokKind::BlockComment, start, line);
        self.count_lines_range(start, self.i);
    }

    /// Advance the line counter over the newlines a multi-line token's
    /// body contained (its characters were consumed by index
    /// arithmetic, bypassing the main loop's `\n` handling).
    fn count_lines_range(&mut self, start: usize, end: usize) {
        self.line += self.b[start..end].iter().filter(|&&c| c == b'\n').count() as u32;
    }

    /// `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, `r#ident`. Returns
    /// false (consuming nothing) when the `r`/`b` is an ordinary ident
    /// start (`ready`, `bytes`).
    fn try_prefixed_literal(&mut self) -> bool {
        let c = self.b[self.i];
        // b'…' — byte char.
        if c == b'b' && self.peek(1) == Some(b'\'') {
            let (start, line) = (self.i, self.line);
            self.i += 1; // consume b, then reuse the char scanner
            self.char_literal(start, line);
            return true;
        }
        // b"…" — byte string.
        if c == b'b' && self.peek(1) == Some(b'"') {
            let start = self.i;
            self.i += 1;
            self.string(start);
            return true;
        }
        // r / br raw forms.
        let hash_from = match (c, self.peek(1)) {
            (b'r', _) => self.i + 1,
            (b'b', Some(b'r')) => self.i + 2,
            _ => return false,
        };
        let mut j = hash_from;
        while self.b.get(j) == Some(&b'#') {
            j += 1;
        }
        if self.b.get(j) == Some(&b'"') {
            // Raw (byte) string with `j - hash_from` hashes.
            let hashes = j - hash_from;
            let (start, line) = (self.i, self.line);
            self.i = j + 1;
            while self.i < self.b.len() {
                if self.b[self.i] == b'"' {
                    let mut h = 0;
                    while h < hashes && self.b.get(self.i + 1 + h) == Some(&b'#') {
                        h += 1;
                    }
                    if h == hashes {
                        self.i += 1 + hashes;
                        self.push(TokKind::Str, start, line);
                        self.count_lines_range(start, self.i);
                        return true;
                    }
                }
                self.i += 1;
            }
            self.push(TokKind::Str, start, line);
            self.count_lines_range(start, self.i);
            return true;
        }
        // r#ident — raw identifier.
        if c == b'r'
            && hash_from == self.i + 1
            && self.b.get(hash_from) == Some(&b'#')
            && self
                .b
                .get(hash_from + 1)
                .copied()
                .is_some_and(is_ident_start)
        {
            let (start, line) = (self.i, self.line);
            self.i = hash_from + 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            self.push(TokKind::Ident, start, line);
            return true;
        }
        false
    }

    fn ident(&mut self) {
        let (start, line) = (self.i, self.line);
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.push(TokKind::Ident, start, line);
    }

    /// Scan a `"…"` body starting at the opening quote (`self.i` points
    /// at `"`); `start` may be earlier to include a `b` prefix.
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i = (self.i + 2).min(self.b.len()),
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Str, start, line);
        self.count_lines_range(start, self.i);
    }

    /// A `'`: char literal or lifetime.
    fn quote(&mut self) {
        let (start, line) = (self.i, self.line);
        match self.peek(1) {
            // Escaped char literal: '\n', '\'', '\u{1F600}'.
            Some(b'\\') => self.char_literal(start, line),
            Some(n) if is_ident_continue(n) => {
                // Run of ident chars: 'a' closes into a char literal,
                // 'abc / 'static stays a lifetime.
                let mut j = self.i + 2;
                while j < self.b.len() && is_ident_continue(self.b[j]) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    self.i = j + 1;
                    self.push(TokKind::Char, start, line);
                } else {
                    self.i = j;
                    self.push(TokKind::Lifetime, start, line);
                }
            }
            // Non-ident char literal: '(' , ' ' , '$'.
            Some(_) => self.char_literal(start, line),
            None => {
                self.i += 1;
                self.push(TokKind::Punct, start, line);
            }
        }
    }

    /// Consume from an opening `'` at `self.i` to the closing `'`.
    fn char_literal(&mut self, start: usize, line: u32) {
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i = (self.i + 2).min(self.b.len()),
                b'\'' => {
                    self.i += 1;
                    break;
                }
                b'\n' => break, // unterminated; don't eat the file
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Char, start, line);
    }

    fn number(&mut self) {
        let (start, line) = (self.i, self.line);
        // Leading digit/alnum run covers hex/octal/binary bodies,
        // exponents without signs, and type suffixes.
        self.alnum_run();
        // Signed exponent: `1e-9` — the run stalls on the sign.
        self.signed_exponent();
        let mut float = false;
        // A `.` continues the literal only when it is not `..` (range),
        // and not a method/field access (`1.max(2)`, tuple `.0` comes
        // from a separate Int token so it never reaches here).
        if self.b.get(self.i) == Some(&b'.')
            && self.peek(1) != Some(b'.')
            && !self.peek(1).is_some_and(is_ident_start)
        {
            float = true;
            self.i += 1;
            self.alnum_run();
            self.signed_exponent();
        }
        let text = &self.src[start..self.i];
        let hexish = text.starts_with("0x") || text.starts_with("0X");
        let kind = if float
            || (!hexish && (text.contains('e') || text.contains('E')))
            || (!hexish && (text.ends_with("f32") || text.ends_with("f64")))
        {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, start, line);
    }

    fn alnum_run(&mut self) {
        while self.i < self.b.len()
            && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
        {
            self.i += 1;
        }
    }

    fn signed_exponent(&mut self) {
        let last = self.i.checked_sub(1).map(|k| self.b[k]);
        if matches!(last, Some(b'e' | b'E'))
            && matches!(self.b.get(self.i), Some(b'+' | b'-'))
            && self.peek(1).is_some_and(|d| d.is_ascii_digit())
        {
            self.i += 1;
            self.alnum_run();
        }
    }

    fn punct(&mut self) {
        let (start, line) = (self.i, self.line);
        let rest = &self.src[self.i..];
        for p in PUNCTS {
            if rest.starts_with(p) {
                self.i += p.len();
                self.push(TokKind::Punct, start, line);
                return;
            }
        }
        // Single char (multi-byte UTF-8 outside literals is unusual but
        // must not split a code point).
        let ch_len = rest.chars().next().map_or(1, char::len_utf8);
        self.i += ch_len;
        self.push(TokKind::Punct, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn sig(src: &str) -> Vec<&str> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_comment())
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "a"),
                (TokKind::BlockComment, "/* outer /* inner */ still outer */"),
                (TokKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn block_comment_lines_advance() {
        let toks = lex("/* a\nb\nc */ x");
        assert_eq!(toks[1].text, "x");
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn raw_strings_with_quotes_and_slashes() {
        let toks = kinds(r##"let s = r#"has "quotes" and // not a comment"#; done"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("not a comment")));
        assert_eq!(toks.last().unwrap().1, "done");
        // And nothing inside was lexed as a comment.
        assert!(!toks
            .iter()
            .any(|(k, _)| matches!(k, TokKind::LineComment | TokKind::BlockComment)));
    }

    #[test]
    fn raw_string_hash_count_must_match() {
        // The inner "# does not close a two-hash raw string.
        let toks = kinds("r##\"one \"# inside\"## after");
        assert_eq!(toks[0], (TokKind::Str, "r##\"one \"# inside\"##"));
        assert_eq!(toks[1], (TokKind::Ident, "after"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"b"bytes" b'x' br"raw" normal"#);
        assert_eq!(
            toks,
            vec![
                (TokKind::Str, r#"b"bytes""#),
                (TokKind::Char, "b'x'"),
                (TokKind::Str, r#"br"raw""#),
                (TokKind::Ident, "normal"),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("fn f<'a>(x: &'a u8) -> char { 'a' }")
                .into_iter()
                .filter(|(k, _)| matches!(k, TokKind::Lifetime | TokKind::Char))
                .collect::<Vec<_>>(),
            vec![
                (TokKind::Lifetime, "'a"),
                (TokKind::Lifetime, "'a"),
                (TokKind::Char, "'a'"),
            ]
        );
        assert_eq!(kinds("'static").first().unwrap().0, TokKind::Lifetime);
        assert_eq!(kinds(r"'\n'").first().unwrap().0, TokKind::Char);
        assert_eq!(kinds("'('").first().unwrap(), &(TokKind::Char, "'('"));
    }

    #[test]
    fn floats_vs_ranges_vs_method_calls() {
        assert_eq!(sig("1.0"), vec!["1.0"]);
        assert_eq!(lex("1.0")[0].kind, TokKind::Float);
        assert_eq!(sig("0..10"), vec!["0", "..", "10"]);
        assert_eq!(lex("0..10")[0].kind, TokKind::Int);
        assert_eq!(sig("1.max(2)"), vec!["1", ".", "max", "(", "2", ")"]);
        assert_eq!(lex("2.5e-3")[0].kind, TokKind::Float);
        assert_eq!(lex("1e9")[0].kind, TokKind::Float);
        assert_eq!(lex("3f64")[0].kind, TokKind::Float);
        assert_eq!(
            lex("0x1f64")[0].kind,
            TokKind::Int,
            "hex digits, not a suffix"
        );
        assert_eq!(lex("1_000")[0].kind, TokKind::Int);
        assert_eq!(
            lex("x.0").iter().map(|t| t.kind).collect::<Vec<_>>(),
            vec![TokKind::Ident, TokKind::Punct, TokKind::Int]
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#match")[0], (TokKind::Ident, "r#match"));
        // …but r"…" is still a string and `ready` still an ident.
        assert_eq!(kinds("ready")[0], (TokKind::Ident, "ready"));
    }

    #[test]
    fn multichar_ops_are_single_tokens() {
        assert_eq!(
            sig("a == b => c <= d != e"),
            vec!["a", "==", "b", "=>", "c", "<=", "d", "!=", "e"]
        );
        assert_eq!(
            sig("x += 1; y <<= 2; z = 3"),
            vec!["x", "+=", "1", ";", "y", "<<=", "2", ";", "z", "=", "3"]
        );
        assert_eq!(sig("a..=b"), vec!["a", "..=", "b"]);
    }

    #[test]
    fn line_numbers_survive_strings_and_comments() {
        let src = "a\n\"two\nline string\"\n// comment\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 5);
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let toks = kinds(r#""a \" b" c"#);
        assert_eq!(toks[0], (TokKind::Str, r#""a \" b""#));
        assert_eq!(toks[1], (TokKind::Ident, "c"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"open", "'", "b'"] {
            let _ = lex(src);
        }
    }
}
