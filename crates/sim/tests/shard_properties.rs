//! Property-based tests for the sharded merge core (`ShardedQueue`)
//! behind `Simulation::run_parallel` — the determinism contract that
//! lets intra-run parallelism keep every digest byte-identical.
//!
//! Two properties carry the whole design (DESIGN.md §17):
//!
//! 1. *Merge equivalence*: for any interleaving of schedules across any
//!    shard assignment, the `(time, global seq)` merge pops the exact
//!    sequence a single `EventQueue` would.
//! 2. *Lookahead safety*: a pop never admits an event at or beyond a
//!    neighbor shard's safe horizon (`min(heads) + lookahead`), and any
//!    cross-shard work an admitted event generates (delay ≥ lookahead)
//!    lands at or after that horizon — the invariant that makes the
//!    conservative-window drain engine race-free.

use hermes_sim::{conservative_horizon, EventQueue, ShardedQueue, Time};
use proptest::prelude::*;

/// One scripted step against the sharded queue and its single-queue
/// reference.
#[derive(Debug, Clone)]
enum ShardOp {
    /// Schedule at `now + delay_ns` into the given shard (index taken
    /// modulo the shard count).
    ScheduleIn { shard: usize, delay_ns: u64 },
    /// Pop one event (no-op allowed when empty).
    Pop,
}

fn shard_ops() -> impl Strategy<Value = Vec<ShardOp>> {
    // Heavy on zero delays: cross-shard *same-instant* ties are the
    // case the global-seq tiebreak exists for, so most weight goes to
    // collisions, with a spread of near and far times around them.
    let op = prop_oneof![
        4 => (0usize..8, Just(0u64)).prop_map(|(shard, delay_ns)| ShardOp::ScheduleIn {
            shard,
            delay_ns
        }),
        3 => (0usize..8, 0u64..300).prop_map(|(shard, delay_ns)| ShardOp::ScheduleIn {
            shard,
            delay_ns
        }),
        2 => (0usize..8, 1_000u64..50_000).prop_map(|(shard, delay_ns)| ShardOp::ScheduleIn {
            shard,
            delay_ns
        }),
        4 => Just(ShardOp::Pop),
    ];
    proptest::collection::vec(op, 1..500)
}

proptest! {
    /// Property 1: the sharded `(time, seq)` merge is indistinguishable
    /// from a single queue for any cross-shard interleaving — pops,
    /// peeks, `now`, lengths and the causality counters all agree.
    #[test]
    fn sharded_merge_equals_single_queue(ops in shard_ops(), n_shards in 1usize..6) {
        let lookahead = Time::from_us(10);
        let mut sharded: ShardedQueue<u32> = ShardedQueue::new(n_shards, lookahead);
        let mut reference: EventQueue<u32> = EventQueue::new();
        let mut tag = 0u32;
        for op in &ops {
            match *op {
                ShardOp::ScheduleIn { shard, delay_ns } => {
                    let at = reference.now() + Time::from_ns(delay_ns);
                    sharded.schedule_to(shard % n_shards, at, tag);
                    reference.schedule(at, tag);
                    tag += 1;
                }
                ShardOp::Pop => {
                    prop_assert_eq!(sharded.pop(), reference.pop());
                    prop_assert_eq!(sharded.now(), reference.now());
                }
            }
            prop_assert_eq!(sharded.peek_time(), reference.peek_time());
            prop_assert_eq!(sharded.len(), reference.len());
        }
        // Full drain: the tails must agree too.
        loop {
            let (a, b) = (sharded.pop(), reference.pop());
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(sharded.clamp_count(), 0);
        prop_assert_eq!(sharded.scheduled_count(), u64::from(tag));
        let per_shard: u64 = sharded.shard_stats().iter().map(|s| s.events).sum();
        prop_assert_eq!(per_shard, u64::from(tag));
    }

    /// Property 2: every admitted event respects the conservative
    /// horizon. Before each pop, take the shard head times; the popped
    /// event must be the global minimum, must sit strictly inside
    /// `min + lookahead`, and any cross-shard event it could generate
    /// with delay ≥ lookahead lands at or after that horizon — i.e. the
    /// lookahead never admits work a neighbor shard hasn't seen yet.
    #[test]
    fn pops_never_precede_a_neighbors_safe_horizon(
        ops in shard_ops(),
        n_shards in 2usize..6,
        lookahead_us in 1u64..50,
    ) {
        let lookahead = Time::from_us(lookahead_us);
        let mut q: ShardedQueue<u32> = ShardedQueue::new(n_shards, lookahead);
        let mut tag = 0u32;
        for op in &ops {
            match *op {
                ShardOp::ScheduleIn { shard, delay_ns } => {
                    q.schedule_to(shard % n_shards, q.now() + Time::from_ns(delay_ns), tag);
                    tag += 1;
                }
                ShardOp::Pop => {
                    let heads = q.shard_heads();
                    let Some(min_head) = heads.iter().flatten().min().copied() else {
                        prop_assert!(q.pop().is_none());
                        continue;
                    };
                    let horizon = conservative_horizon(&heads, lookahead)
                        .expect("non-empty heads have a horizon");
                    let (t, _) = q.pop().expect("peeked non-empty");
                    // The merge admits exactly the global minimum…
                    prop_assert_eq!(t, min_head);
                    // …which sits strictly inside the safe window…
                    prop_assert!(t < horizon);
                    // …and its cross-shard consequences (delay ≥
                    // lookahead) land at or after the horizon, so no
                    // neighbor shard processing the same window can
                    // miss them.
                    prop_assert!(t + lookahead >= horizon);
                }
            }
        }
    }
}
