//! Property-based tests for the discrete-event engine invariants.

use hermes_sim::{EventQueue, SimRng, Time};
use proptest::prelude::*;

proptest! {
    /// Popped timestamps are nondecreasing for any schedule order.
    #[test]
    fn pops_are_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(*t), i);
        }
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Same-instant events fire in scheduling order no matter how many
    /// collide.
    #[test]
    fn fifo_among_equal_times(groups in proptest::collection::vec((0u64..100, 1usize..20), 1..30)) {
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut n = 0usize;
        for (t, count) in &groups {
            for _ in 0..*count {
                q.schedule(Time::from_us(*t), n);
                expected.push((*t, n));
                n += 1;
            }
        }
        expected.sort_by_key(|&(t, seq)| (t, seq));
        let mut got = Vec::new();
        while let Some((t, id)) = q.pop() {
            got.push((t.as_us(), id));
        }
        prop_assert_eq!(got, expected);
    }

    /// Every scheduled event is popped exactly once.
    #[test]
    fn conservation(times in proptest::collection::vec(0u64..10_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(*t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some((_, id)) = q.pop() {
            prop_assert!(!seen[id], "event {} popped twice", id);
            seen[id] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// tx_time is monotone in bytes and antitone in rate.
    #[test]
    fn tx_time_monotonicity(bytes in 1u64..1_000_000, rate in 1u64..100_000_000_000) {
        let t = Time::tx_time(bytes, rate);
        prop_assert!(Time::tx_time(bytes + 1, rate) >= t);
        prop_assert!(Time::tx_time(bytes, rate + 1) <= t);
        // Exact bound: t >= bits/rate seconds.
        let lower = (bytes as u128 * 8 * 1_000_000_000 / rate as u128) as u64;
        prop_assert!(t.as_ns() >= lower);
        prop_assert!(t.as_ns() <= lower + 1);
    }

    /// RNG: below() stays in range, exp() is nonnegative and finite.
    #[test]
    fn rng_ranges(seed in 0u64..u64::MAX, n in 1usize..1000) {
        let mut r = SimRng::new(seed);
        prop_assert!(r.below(n) < n);
        let e = r.exp(5.0);
        prop_assert!(e.is_finite() && e >= 0.0);
    }

    /// Splitting with the same label is stable; distinct labels give
    /// distinct streams (overwhelmingly).
    #[test]
    fn rng_split_stability(seed in 0u64..u64::MAX, a in 0u64..1000, b in 1001u64..2000) {
        let root = SimRng::new(seed);
        let mut x = root.split(a);
        let mut x2 = root.split(a);
        let mut y = root.split(b);
        prop_assert_eq!(x.u64(), x2.u64());
        prop_assert_ne!(x.u64(), y.u64());
    }
}
