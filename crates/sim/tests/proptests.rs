//! Property-based tests for the discrete-event engine invariants.

use hermes_sim::{EventQueue, HeapQueue, SimRng, Time, WheelQueue};
use proptest::prelude::*;

/// One scripted step against both queue implementations.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule at `now + delay_ns`.
    ScheduleIn(u64),
    /// Pop one event (no-op allowed when both queues are empty).
    Pop,
    /// Advance the cursor toward `now + delta_ns` without popping,
    /// clamped to the next pending event so the advance_to contract
    /// (never pass a pending event) holds by construction.
    Advance(u64),
}

fn queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    // Delays mix dense same-instant collisions (0), sub-slot steps,
    // level-boundary straddles (≈64, ≈4096) and far jumps, so the wheel
    // exercises direct ready-queue hits, level-0 buckets, and multi-level
    // cascades in one script.
    let op = prop_oneof![
        3 => (0u64..8).prop_map(QueueOp::ScheduleIn),
        3 => (0u64..200).prop_map(QueueOp::ScheduleIn),
        2 => (3_500u64..5_000).prop_map(QueueOp::ScheduleIn),
        1 => (1u64 << 20..1u64 << 34).prop_map(QueueOp::ScheduleIn),
        4 => Just(QueueOp::Pop),
        1 => (0u64..10_000).prop_map(QueueOp::Advance),
    ];
    proptest::collection::vec(op, 1..400)
}

proptest! {
    /// Differential oracle: the timing wheel and the legacy binary heap
    /// must agree on every pop, peek, `now`, and length for any
    /// interleaving of schedules and pops — this is what lets the
    /// `EventQueue` alias flip between them without changing a single
    /// event trace.
    #[test]
    fn wheel_matches_heap_differentially(ops in queue_ops()) {
        let mut wheel: WheelQueue<usize> = WheelQueue::new();
        let mut heap: HeapQueue<usize> = HeapQueue::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                QueueOp::ScheduleIn(delay) => {
                    wheel.schedule_in(Time::from_ns(*delay), i);
                    heap.schedule_in(Time::from_ns(*delay), i);
                }
                QueueOp::Pop => {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                    prop_assert_eq!(wheel.now(), heap.now());
                }
                QueueOp::Advance(delta) => {
                    // Clamp the target to the next pending event (trains
                    // never advance past one in the fabric either).
                    let want = wheel.now() + Time::from_ns(*delta);
                    let target = wheel.peek_time().map_or(want, |p| p.min(want));
                    wheel.advance_to(target);
                    heap.advance_to(target);
                    prop_assert_eq!(wheel.now(), heap.now());
                }
            }
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain both to the end; full pop sequences must be identical.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.scheduled_count(), heap.scheduled_count());
        // Every schedule in the script was causal (delays are relative to
        // now), so neither queue may have counted a clamp.
        prop_assert_eq!(wheel.clamp_count(), 0);
        prop_assert_eq!(heap.clamp_count(), 0);
    }

    /// Equal-time FIFO ordering holds in *both* implementations: events
    /// scheduled for the same instant pop in scheduling order, even when
    /// the instants collide across wheel-level boundaries.
    #[test]
    fn fifo_among_equal_times_both_schedulers(
        groups in proptest::collection::vec((0u64..130, 1usize..10), 1..30),
    ) {
        let mut wheel: WheelQueue<usize> = WheelQueue::new();
        let mut heap: HeapQueue<usize> = HeapQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut n = 0usize;
        for (t, count) in &groups {
            for _ in 0..*count {
                wheel.schedule(Time::from_ns(*t), n);
                heap.schedule(Time::from_ns(*t), n);
                expected.push((*t, n));
                n += 1;
            }
        }
        expected.sort_by_key(|&(t, seq)| (t, seq));
        for (want_t, want_id) in expected {
            let (wt, wid) = wheel.pop().unwrap();
            let (ht, hid) = heap.pop().unwrap();
            prop_assert_eq!((wt.as_ns(), wid), (want_t, want_id));
            prop_assert_eq!((ht.as_ns(), hid), (want_t, want_id));
        }
        prop_assert!(wheel.pop().is_none() && heap.pop().is_none());
    }

    /// Popped timestamps are nondecreasing for any schedule order.
    #[test]
    fn pops_are_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(*t), i);
        }
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Same-instant events fire in scheduling order no matter how many
    /// collide.
    #[test]
    fn fifo_among_equal_times(groups in proptest::collection::vec((0u64..100, 1usize..20), 1..30)) {
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut n = 0usize;
        for (t, count) in &groups {
            for _ in 0..*count {
                q.schedule(Time::from_us(*t), n);
                expected.push((*t, n));
                n += 1;
            }
        }
        expected.sort_by_key(|&(t, seq)| (t, seq));
        let mut got = Vec::new();
        while let Some((t, id)) = q.pop() {
            got.push((t.as_us(), id));
        }
        prop_assert_eq!(got, expected);
    }

    /// Every scheduled event is popped exactly once.
    #[test]
    fn conservation(times in proptest::collection::vec(0u64..10_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(*t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some((_, id)) = q.pop() {
            prop_assert!(!seen[id], "event {} popped twice", id);
            seen[id] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// tx_time is monotone in bytes and antitone in rate.
    #[test]
    fn tx_time_monotonicity(bytes in 1u64..1_000_000, rate in 1u64..100_000_000_000) {
        let t = Time::tx_time(bytes, rate);
        prop_assert!(Time::tx_time(bytes + 1, rate) >= t);
        prop_assert!(Time::tx_time(bytes, rate + 1) <= t);
        // Exact bound: t >= bits/rate seconds.
        let lower = (bytes as u128 * 8 * 1_000_000_000 / rate as u128) as u64;
        prop_assert!(t.as_ns() >= lower);
        prop_assert!(t.as_ns() <= lower + 1);
    }

    /// RNG: below() stays in range, exp() is nonnegative and finite.
    #[test]
    fn rng_ranges(seed in 0u64..u64::MAX, n in 1usize..1000) {
        let mut r = SimRng::new(seed);
        prop_assert!(r.below(n) < n);
        let e = r.exp(5.0);
        prop_assert!(e.is_finite() && e >= 0.0);
    }

    /// Splitting with the same label is stable; distinct labels give
    /// distinct streams (overwhelmingly).
    #[test]
    fn rng_split_stability(seed in 0u64..u64::MAX, a in 0u64..1000, b in 1001u64..2000) {
        let root = SimRng::new(seed);
        let mut x = root.split(a);
        let mut x2 = root.split(a);
        let mut y = root.split(b);
        prop_assert_eq!(x.u64(), x2.u64());
        prop_assert_ne!(x.u64(), y.u64());
    }

    /// Time addition saturates instead of wrapping: for any operands the
    /// sum is well-defined, commutative, and monotone.
    #[test]
    fn time_add_saturates(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (Time::from_ns(a), Time::from_ns(b));
        let sum = ta + tb;
        prop_assert_eq!(sum, tb + ta);
        prop_assert!(sum >= ta && sum >= tb, "addition must be monotone");
        prop_assert_eq!(sum.as_ns(), a.saturating_add(b));
        prop_assert_eq!(ta + Time::ZERO, ta);
    }

    /// Saturating subtraction never underflows and inverts addition
    /// whenever the sum did not saturate.
    #[test]
    fn time_sub_saturates(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (Time::from_ns(a), Time::from_ns(b));
        let diff = ta.saturating_sub(tb);
        prop_assert_eq!(diff.as_ns(), a.saturating_sub(b));
        if a >= b {
            prop_assert_eq!(diff + tb, ta, "sub must invert add when no clamp");
            prop_assert_eq!(ta - tb, diff, "Sub and saturating_sub agree when legal");
        } else {
            prop_assert_eq!(diff, Time::ZERO);
        }
    }

    /// Scalar multiplication saturates at the representable maximum and
    /// is exact below it.
    #[test]
    fn time_mul_saturates(ns in any::<u64>(), k in 0u64..10_000) {
        let t = Time::from_ns(ns) * k;
        prop_assert_eq!(t.as_ns(), ns.saturating_mul(k));
        // ×0 and ×1 identities (through black_box so the erasing-op and
        // identity-op lints do not fold the multiplication away).
        let zero = std::hint::black_box(0u64);
        let one = std::hint::black_box(1u64);
        prop_assert_eq!(Time::from_ns(ns) * zero, Time::ZERO);
        prop_assert_eq!(Time::from_ns(ns) * one, Time::from_ns(ns));
    }

    /// Float scaling clamps to [ZERO, MAX] for any finite factor,
    /// including negatives, and roundtrips through from_secs_f64.
    #[test]
    fn time_mul_f64_clamps(us in 0u64..1_000_000_000, f in -1e12f64..1e12) {
        let t = Time::from_us(us).mul_f64(f);
        prop_assert!(t >= Time::ZERO);
        if f <= 0.0 {
            prop_assert_eq!(t, Time::ZERO, "negative scaling clamps to zero");
        }
        let neg = Time::from_secs_f64(-(us as f64));
        prop_assert_eq!(neg, Time::ZERO, "negative seconds clamp to zero");
    }
}
