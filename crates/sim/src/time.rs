//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in integer nanoseconds.
///
/// `Time` doubles as both an instant and a duration — the simulator's
/// arithmetic never needs the instant/duration distinction, and a single
/// type keeps the event queue and every per-packet timestamp lean.
///
/// All arithmetic is saturating on underflow so that "how long ago"
/// computations at simulation start cannot wrap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Time zero — the start of every simulation.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    ///
    /// Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Time {
        if s <= 0.0 {
            Time::ZERO
        } else {
            Time((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// The time needed to serialize `bytes` bytes onto a link of
    /// `rate_bps` bits per second, rounded up to the next nanosecond.
    ///
    /// This is the single conversion used by every link and pacing
    /// computation in the fabric, so rounding behaviour is centralized
    /// here: rounding *up* guarantees a link never transmits faster than
    /// its configured rate.
    #[inline]
    pub fn tx_time(bytes: u64, rate_bps: u64) -> Time {
        debug_assert!(rate_bps > 0, "link rate must be positive");
        let bits = bytes as u128 * 8 * 1_000_000_000;
        Time(bits.div_ceil(rate_bps as u128) as u64)
    }

    /// Scale by a float factor (e.g. RTO backoff, EWMA horizons).
    /// Clamps at zero / `Time::MAX`.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Time {
        if k <= 0.0 {
            return Time::ZERO;
        }
        let v = self.0 as f64 * k;
        if v >= u64::MAX as f64 {
            Time::MAX
        } else {
            Time(v as u64)
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    /// Panics in debug builds on underflow; use [`Time::saturating_sub`]
    /// where "before the start" is a legitimate state.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(self.0 >= rhs.0, "Time subtraction underflow");
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Time {
    /// Human scale: picks ns/µs/ms/s based on magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.4}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
        assert_eq!(Time::from_secs_f64(0.5), Time::from_ms(500));
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
    }

    #[test]
    fn tx_time_matches_hand_math() {
        // 1500 bytes at 10 Gbps = 1.2 us.
        assert_eq!(Time::tx_time(1500, 10_000_000_000), Time::from_ns(1_200));
        // 1500 bytes at 1 Gbps = 12 us.
        assert_eq!(Time::tx_time(1500, 1_000_000_000), Time::from_us(12));
        // Rounds up: 1 byte at 3 bps = ceil(8e9/3) ns.
        assert_eq!(Time::tx_time(1, 3), Time::from_ns(2_666_666_667));
    }

    #[test]
    fn tx_time_no_overflow_on_large_inputs() {
        // A 1 GB transfer at 1 bps must not overflow intermediate math.
        let t = Time::tx_time(1_000_000_000, 1);
        assert_eq!(t.as_ns(), 8_000_000_000_000_000_000);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Time::from_us(1).saturating_sub(Time::from_us(2)),
            Time::ZERO
        );
        assert_eq!(
            Time::from_us(5).saturating_sub(Time::from_us(2)),
            Time::from_us(3)
        );
    }

    #[test]
    fn mul_f64_clamps() {
        assert_eq!(Time::from_us(10).mul_f64(1.5), Time::from_us(15));
        assert_eq!(Time::from_us(10).mul_f64(-1.0), Time::ZERO);
        assert_eq!(Time::MAX.mul_f64(2.0), Time::MAX);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Time::from_ns(12).to_string(), "12ns");
        assert_eq!(Time::from_us(12).to_string(), "12.00us");
        assert_eq!(Time::from_ms(12).to_string(), "12.000ms");
        assert_eq!(Time::from_secs(2).to_string(), "2.0000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_ns(999) < Time::from_us(1));
        assert!(Time::MAX > Time::from_secs(100));
    }
}
