//! Hierarchical timing-wheel event scheduler.
//!
//! A drop-in replacement for the binary-heap [`HeapQueue`](crate::HeapQueue)
//! honoring the identical `(time, seq)` total-order contract: pops are
//! nondecreasing in time, and events scheduled for the same instant fire
//! in scheduling order. Same (config, seed) runs therefore produce
//! byte-identical event traces under either scheduler — the differential
//! property tests in `tests/proptests.rs` drive both against each other.
//!
//! # Structure
//!
//! The full 64-bit nanosecond time domain is covered by [`LEVELS`] wheels
//! of [`SLOTS`] slots each; level `l` slots have a granularity of
//! `2^(6·l)` ns. An event due at absolute time `at` while the wheel
//! cursor sits at `now` lives at
//!
//! ```text
//! level = msb(at ^ now) / 6          (bit index of the highest differing bit)
//! slot  = (at >> (6 · level)) & 63   (the time's digit at that level)
//! ```
//!
//! Two consequences of this placement drive the whole design:
//!
//! * **No intra-level wraparound.** At its own level an event's slot digit
//!   is strictly greater than the cursor's digit (a smaller digit would
//!   mean `at < now`), so the first occupied slot of a level — a single
//!   `trailing_zeros` on the occupancy bitmap — holds the level's minimum.
//! * **Levels are time-ordered.** Every level-`l+1` event is strictly
//!   later than every level-`l` event, so the global minimum is the
//!   first occupied slot of the lowest occupied level: `peek_time` is
//!   O(levels) with no mutation and no cached state to invalidate.
//!
//! Popping jumps the cursor directly to the next event's timestamp and
//! *cascades*: slots indexed by the new cursor position ("pos slots") are
//! drained top-down and their events re-placed relative to the new cursor
//! — each strictly descends in level, events due exactly now land in a
//! `ready` queue sorted by seq to restore FIFO order. The jump skips
//! empty slots entirely, so sparse far-future schedules (RTO timers,
//! fault injections) cost O(levels), not O(elapsed ticks).
//!
//! # Memory model (DESIGN.md §16)
//!
//! Slot storage is sized for the measured common case — the overwhelming
//! majority of occupied buckets hold one or two events:
//!
//! * **Inline lanes.** Each bucket stores its first two entries inline
//!   (`Option<Entry>` pair); no heap buffer exists until a third
//!   same-bucket entry lands.
//! * **Lazy levels.** A level's 64-bucket array is `Box`-allocated on
//!   first use. Short-horizon simulations never materialize the high
//!   levels at all.
//! * **Trim-on-drain.** A bucket's overflow (`spill`) buffer is detached
//!   when the bucket drains and returned to a bounded pool
//!   ([`SPILL_POOL_MAX`] buffers of at most [`SPILL_KEEP_CAP`] entries);
//!   oversized or surplus buffers are freed. A burst that momentarily
//!   piles thousands of events into one slot therefore no longer pins
//!   its high-water allocation for the rest of the run — the regression
//!   that put the PR-4 wheel at 144 MB peak RSS vs the heap's 19 MB.
//!   The `ready` ring is trimmed the same way whenever it empties.

use std::collections::VecDeque;

use crate::Time;

/// log2 of the slot count per level.
const BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << BITS;
/// Wheel levels; 11 × 6 = 66 bits covers the full `u64` nanosecond domain.
const LEVELS: usize = 11;

/// Spill buffers with more capacity than this are freed on drain instead
/// of pooled, so one burst cannot pin a huge dead allocation.
const SPILL_KEEP_CAP: usize = 512;

/// Bound on the number of pooled spill buffers. Generous reuse keeps
/// the cascade from churning the allocator (churn fragments the arena,
/// which shows up directly in peak RSS); the worst-case pooled bytes
/// (64 × 512 entries) stay comfortably bounded.
const SPILL_POOL_MAX: usize = 64;

/// Capacity ceiling retained by the `ready` ring across drains.
const READY_KEEP_CAP: usize = 1024;

/// A scheduled event: absolute due time plus the global schedule sequence
/// number that breaks same-instant ties FIFO.
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

/// One wheel slot. The two inline lanes are filled first (in push
/// order); `spill` is heap overflow for the rare crowded bucket and is
/// only allocated — from the queue's bounded spill pool — when a third
/// entry lands. Buckets are only ever drained whole, so `a` occupied ⇔
/// bucket non-empty.
struct Bucket<E> {
    a: Option<Entry<E>>,
    b: Option<Entry<E>>,
    spill: Vec<Entry<E>>,
}

impl<E> Bucket<E> {
    const fn new() -> Self {
        Bucket {
            a: None,
            b: None,
            spill: Vec::new(),
        }
    }
}

/// One lazily-allocated wheel level: occupancy bitmap, per-slot minima,
/// and the 64 buckets.
struct Level<E> {
    /// Bitmap of non-empty slots.
    occupied: u64,
    /// Minimum due time per slot (`Time::MAX` when empty). Exact,
    /// because buckets are only ever drained whole, never partially.
    min: [Time; SLOTS],
    buckets: [Bucket<E>; SLOTS],
}

impl<E> Level<E> {
    fn boxed() -> Box<Level<E>> {
        Box::new(Level {
            occupied: 0,
            min: [Time::MAX; SLOTS],
            buckets: std::array::from_fn(|_| Bucket::new()),
        })
    }
}

/// A deterministic future-event list backed by a hierarchical timing
/// wheel.
///
/// Semantics match [`HeapQueue`](crate::HeapQueue) exactly:
///
/// * Pops in nondecreasing time order.
/// * Ties broken by scheduling order (FIFO among same-instant events).
/// * Tracks `now`, the time of the most recently popped event, and
///   rejects scheduling into the past (debug assertion; release clamps
///   and counts the clamp — see [`WheelQueue::clamp_count`]).
pub struct WheelQueue<E> {
    /// Levels, allocated on first use (index = level).
    levels: [Option<Box<Level<E>>>; LEVELS],
    /// Events due exactly at the cursor, in seq (FIFO) order.
    ready: VecDeque<Entry<E>>,
    /// Bounded pool of drained spill buffers awaiting reuse.
    spill_pool: Vec<Vec<Entry<E>>>,
    /// Time of the most recently popped event; also the wheel cursor all
    /// placements are relative to.
    now: Time,
    seq: u64,
    len: usize,
    /// Past-time schedules clamped to `now` (release builds). Nonzero
    /// means a caller violated causality — surfaced through
    /// `hermes-runtime::selfcheck` so the bug cannot vanish silently.
    clamped: u64,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelQueue<E> {
    /// An empty queue with `now == Time::ZERO`.
    pub fn new() -> Self {
        WheelQueue {
            levels: std::array::from_fn(|_| None),
            ready: VecDeque::new(),
            spill_pool: Vec::new(),
            now: Time::ZERO,
            seq: 0,
            len: 0,
            clamped: 0,
        }
    }

    /// The time of the most recently popped event (simulated "now").
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling strictly before `now` is a logic error in the caller
    /// (events cannot fire in the past); debug builds assert, release
    /// builds clamp to `now` to stay safe — and count the clamp so the
    /// causality violation stays visible (see [`Self::clamp_count`]).
    pub fn schedule(&mut self, at: Time, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        let e = Entry {
            at,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.len += 1;
        if at == self.now {
            // A fresh schedule carries the largest seq seen so far, so
            // its FIFO position among the due-now events is the back.
            self.ready.push_back(e);
        } else {
            self.place(e);
        }
    }

    /// Schedule `payload` to fire `delay` after `now`.
    pub fn schedule_in(&mut self, delay: Time, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.ready.is_empty() {
            if self.ready.capacity() > READY_KEEP_CAP {
                // Trim the ready ring's burst high-water mark while it
                // is empty (the only time shrinking copies nothing).
                self.ready.shrink_to(READY_KEEP_CAP);
            }
            // Jump the cursor straight to the next occupied instant and
            // re-bucket everything the jump strands in a pos slot.
            let target = self.wheel_min()?;
            debug_assert!(target >= self.now, "event queue went backwards");
            self.now = target;
            self.cascade();
            debug_assert!(
                !self.ready.is_empty(),
                "cascade must surface the event at the jump target"
            );
        }
        let e = self.ready.pop_front()?;
        self.len -= 1;
        debug_assert!(e.at == self.now, "ready event not at cursor");
        self.now = e.at;
        Some((e.at, e.payload))
    }

    /// Advance the cursor to `t` without popping anything.
    ///
    /// Contract: `t >= now`, and no pending event may be due strictly
    /// before `t` (events due exactly at `t` are fine — they surface
    /// into `ready` and pop next). This is the primitive behind
    /// packet-train batching: the caller has proven the instant `t` is
    /// the next thing to happen and processes it without a scheduler
    /// round-trip, so the queue only needs its notion of "now" moved.
    pub fn advance_to(&mut self, t: Time) {
        debug_assert!(
            t >= self.now,
            "advance_to went backwards: {t} < {}",
            self.now
        );
        debug_assert!(
            self.peek_time().is_none_or(|p| p >= t),
            "advance_to must not pass pending events"
        );
        if t == self.now {
            return;
        }
        self.now = t;
        self.cascade();
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(e) = self.ready.front() {
            return Some(e.at);
        }
        self.wheel_min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }

    /// Past-time schedules that release builds clamped to `now`.
    /// Always 0 in a causality-respecting run; debug builds assert
    /// instead of counting.
    pub fn clamp_count(&self) -> u64 {
        self.clamped
    }

    /// Approximate retained heap footprint of the queue's own buffers in
    /// bytes (levels, spill buffers, spill pool, ready ring). O(levels ×
    /// slots); used by the memory regression tests and diagnostics, not
    /// by the hot path.
    pub fn retained_bytes(&self) -> usize {
        let entry = std::mem::size_of::<Entry<E>>();
        let mut total = self.ready.capacity() * entry;
        for lvl in self.levels.iter().flatten() {
            total += std::mem::size_of::<Level<E>>();
            for b in &lvl.buckets {
                total += b.spill.capacity() * entry;
            }
        }
        for s in &self.spill_pool {
            total += s.capacity() * entry;
        }
        total
    }

    /// Bucket an entry with `at > now` relative to the current cursor.
    fn place(&mut self, e: Entry<E>) {
        let at = e.at.as_ns();
        let xor = at ^ self.now.as_ns();
        debug_assert!(xor != 0, "due-now events belong in `ready`");
        // msb index of the xor picks the level; the time's digit at that
        // level picks the slot. msb ≤ 63 ⇒ level ≤ 10 ⇒ shift ≤ 60.
        let level = ((63 - xor.leading_zeros()) / BITS) as usize;
        let slot = ((at >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        // ANALYZER: allow(panic-surface, level = msb(xor)/6 <= 10 < LEVELS since msb <= 63)
        let lvl = self.levels[level].get_or_insert_with(Level::boxed);
        lvl.occupied |= 1 << slot;
        // ANALYZER: allow(panic-surface, slot is masked to SLOTS-1)
        if e.at < lvl.min[slot] {
            // ANALYZER: allow(panic-surface, same slot bound as the read above)
            lvl.min[slot] = e.at;
        }
        let bucket = &mut lvl.buckets[slot]; // ANALYZER: allow(panic-surface, same slot bound as min)
        if bucket.a.is_none() {
            bucket.a = Some(e);
        } else if bucket.b.is_none() {
            bucket.b = Some(e);
        } else {
            if bucket.spill.capacity() == 0 {
                bucket.spill = self.spill_pool.pop().unwrap_or_default();
            }
            if bucket.spill.len() == bucket.spill.capacity() {
                // Grow in exact ~1.25× steps instead of Vec's doubling:
                // capacity slack is what the peak-RSS budget pays for,
                // and a crowded bucket at 2× slack across hundreds of
                // buckets was a double-digit-MB overhead on fig12.
                let grow = (bucket.spill.len() / 4).max(32);
                bucket.spill.reserve_exact(grow);
            }
            bucket.spill.push(e);
        }
    }

    /// Minimum due time across all bucketed events (excludes `ready`).
    fn wheel_min(&self) -> Option<Time> {
        for lvl in self.levels.iter().flatten() {
            if lvl.occupied != 0 {
                let slot = lvl.occupied.trailing_zeros() as usize;
                // ANALYZER: allow(panic-surface, occupied != 0 so slot <= 63 < SLOTS)
                return Some(lvl.min[slot]);
            }
        }
        None
    }

    /// Drain every slot indexed by the (just-moved) cursor, top level
    /// down, re-placing each event relative to the new cursor. Events due
    /// exactly now go to `ready`; everything else descends strictly in
    /// level, so one pass suffices. Higher-level events never interleave
    /// behind lower-level ones incorrectly because `ready` is re-sorted
    /// by seq at the end (seqs are unique, so the order is total).
    fn cascade(&mut self) {
        let now_ns = self.now.as_ns();
        for level in (0..LEVELS).rev() {
            let pos = ((now_ns >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            let bit = 1u64 << pos;
            // ANALYZER: allow(panic-surface, level ranges over 0..LEVELS)
            let Some(lvl) = self.levels[level].as_deref_mut() else {
                continue;
            };
            if lvl.occupied & bit == 0 {
                continue;
            }
            lvl.occupied &= !bit;
            // ANALYZER: allow(panic-surface, pos is masked to SLOTS-1)
            lvl.min[pos] = Time::MAX;
            let bucket = &mut lvl.buckets[pos]; // ANALYZER: allow(panic-surface, same pos bound as min)
            let a = bucket.a.take();
            let b = bucket.b.take();
            let mut spill = std::mem::take(&mut bucket.spill);
            for e in a.into_iter().chain(b) {
                self.redeposit(e);
            }
            // Drain from the tail and shrink geometrically as the
            // buffer empties: a crowded bucket's entries are being
            // copied into fresh lower-level storage, and holding the
            // old buffer at full capacity for the whole redeposit
            // transiently doubles the bucket's footprint — which is
            // exactly what peak-RSS measures. Tail order is fine:
            // bucket-internal order never reaches the caller (`ready`
            // is seq-sorted below; lower buckets re-normalize when
            // they in turn drain).
            while let Some(e) = spill.pop() {
                self.redeposit(e);
                if spill.len() >= SPILL_KEEP_CAP && spill.capacity() >= spill.len() * 2 {
                    spill.shrink_to(spill.len());
                }
            }
            self.retire_spill(spill);
        }
        self.ready.make_contiguous().sort_unstable_by_key(|e| e.seq);
    }

    #[inline]
    fn redeposit(&mut self, e: Entry<E>) {
        if e.at == self.now {
            self.ready.push_back(e);
        } else {
            self.place(e);
        }
    }

    /// Trim-on-drain: a drained bucket's overflow buffer rotates into
    /// the bounded spill pool; oversized or surplus buffers are freed so
    /// burst high-water allocations are not pinned for the run's rest.
    fn retire_spill(&mut self, spill: Vec<Entry<E>>) {
        debug_assert!(spill.is_empty());
        if spill.capacity() > 0
            && spill.capacity() <= SPILL_KEEP_CAP
            && self.spill_pool.len() < SPILL_POOL_MAX
        {
            self.spill_pool.push(spill);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = WheelQueue::new();
        q.schedule(Time::from_us(3), 3u32);
        q.schedule(Time::from_us(1), 1);
        q.schedule(Time::from_us(2), 2);
        assert_eq!(q.pop().unwrap(), (Time::from_us(1), 1));
        assert_eq!(q.pop().unwrap(), (Time::from_us(2), 2));
        assert_eq!(q.pop().unwrap(), (Time::from_us(3), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = WheelQueue::new();
        for i in 0..100u32 {
            q.schedule(Time::from_us(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = WheelQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time::from_us(10), ());
        q.pop();
        assert_eq!(q.now(), Time::from_us(10));
        q.schedule_in(Time::from_us(5), ());
        assert_eq!(q.peek_time(), Some(Time::from_us(15)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = WheelQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::from_us(1), ());
        q.schedule(Time::from_us(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }

    /// Same-instant events that start life at *different wheel levels*
    /// (one bucketed before a cursor move, one after) must still pop
    /// FIFO. This is the stale-pos-slot cascade path.
    #[test]
    fn equal_times_across_levels_stay_fifo() {
        let mut q = WheelQueue::new();
        // At now=0: both land at level 1, slot 1 (digits of 100 and 70).
        q.schedule(Time::from_ns(100), "a");
        q.schedule(Time::from_ns(70), "b");
        assert_eq!(q.pop().unwrap(), (Time::from_ns(70), "b"));
        // After the cursor jump to 70, "a" was cascaded to level 0.
        // "c" joins it at the same instant but with a larger seq.
        q.schedule(Time::from_ns(100), "c");
        assert_eq!(q.pop().unwrap(), (Time::from_ns(100), "a"));
        assert_eq!(q.pop().unwrap(), (Time::from_ns(100), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn level_boundaries_cascade_correctly() {
        // Straddle the 64-ns (level 0/1) and 4096-ns (level 1/2)
        // boundaries in one run.
        let mut q = WheelQueue::new();
        for at in [63u64, 64, 65, 4095, 4096, 4097] {
            q.schedule(Time::from_ns(at), at);
        }
        for want in [63u64, 64, 65, 4095, 4096, 4097] {
            let (t, v) = q.pop().unwrap();
            assert_eq!((t, v), (Time::from_ns(want), want));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_jumps_skip_empty_slots() {
        let mut q = WheelQueue::new();
        q.schedule(Time::from_secs(3600), 1u32);
        q.schedule(Time::from_ns(1), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.peek_time(), Some(Time::from_secs(3600)));
        assert_eq!(q.pop().unwrap(), (Time::from_secs(3600), 1));
        assert_eq!(q.now(), Time::from_secs(3600));
    }

    #[test]
    fn max_time_is_representable() {
        let mut q = WheelQueue::new();
        q.schedule(Time::MAX, "sentinel");
        q.schedule(Time::from_ns(5), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap(), (Time::MAX, "sentinel"));
        assert!(q.is_empty());
    }

    /// Buckets past the two inline lanes spill to the heap and still
    /// pop in exact FIFO order.
    #[test]
    fn crowded_bucket_spills_and_stays_fifo() {
        let mut q = WheelQueue::new();
        // All in one level-1 bucket at first (same slot digit), more
        // than the two inline lanes can hold.
        for i in 0..50u32 {
            q.schedule(Time::from_ns(100), i);
        }
        for i in 0..50u32 {
            assert_eq!(q.pop().unwrap(), (Time::from_ns(100), i));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_pop_matches_heap() {
        // Cheap deterministic LCG-driven differential run against the
        // heap; the heavier randomized version lives in tests/proptests.rs.
        let mut wheel = WheelQueue::new();
        let mut heap = crate::HeapQueue::new();
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..2000u32 {
            let delay = Time::from_ns(next() % 10_000);
            wheel.schedule_in(delay, round);
            heap.schedule_in(delay, round);
            if next() % 3 == 0 {
                assert_eq!(wheel.pop(), heap.pop());
                assert_eq!(wheel.now(), heap.now());
            }
            assert_eq!(wheel.peek_time(), heap.peek_time());
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    /// `advance_to` moves the cursor (and re-buckets stranded slots)
    /// without disturbing pending events or FIFO order.
    #[test]
    fn advance_to_rebuckets_without_losing_events() {
        let mut q = WheelQueue::new();
        q.schedule(Time::from_ns(100), "a");
        q.schedule(Time::from_ns(70), "b");
        q.schedule(Time::from_ns(100), "c");
        // 69 is strictly before every pending event; the jump forces the
        // same cascade a pop to 69 would have done.
        q.advance_to(Time::from_ns(69));
        assert_eq!(q.now(), Time::from_ns(69));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap(), (Time::from_ns(70), "b"));
        assert_eq!(q.pop().unwrap(), (Time::from_ns(100), "a"));
        assert_eq!(q.pop().unwrap(), (Time::from_ns(100), "c"));
        assert!(q.pop().is_none());
    }

    /// Advancing exactly onto a pending event's timestamp surfaces it
    /// into `ready` so the next pop returns it at the right instant.
    #[test]
    fn advance_to_event_time_keeps_it_poppable() {
        let mut q = WheelQueue::new();
        q.schedule(Time::from_us(10), 1u32);
        q.advance_to(Time::from_us(10));
        assert_eq!(q.now(), Time::from_us(10));
        assert_eq!(q.pop().unwrap(), (Time::from_us(10), 1));
        // Advancing an empty queue is also legal (pure cursor move).
        q.advance_to(Time::from_us(25));
        assert_eq!(q.now(), Time::from_us(25));
        assert!(q.pop().is_none());
    }

    /// Trim-on-drain: a one-off burst must not pin its high-water
    /// allocation. After the burst drains, retained buffers shrink back
    /// to the bounded pool + ready ceiling.
    #[test]
    fn burst_buffers_are_trimmed_after_drain() {
        let mut q = WheelQueue::new();
        let n = 50_000u64;
        for i in 0..n {
            // One crowded far bucket: everything spills.
            q.schedule(Time::from_ns(1 << 20), i);
        }
        let peak = q.retained_bytes();
        for _ in 0..n {
            q.pop().unwrap();
        }
        // One more tiny cycle so the empty `ready` ring gets trimmed.
        q.schedule_in(Time::from_ns(10), 0);
        q.pop().unwrap();
        let after = q.retained_bytes();
        assert!(
            peak > 1_000_000,
            "burst should have spilled into a large buffer ({peak} B)"
        );
        assert!(
            after < 300_000,
            "drained wheel retains {after} B — trim-on-drain failed"
        );
        assert!(q.is_empty());
    }

    /// Levels are allocated lazily: a short-horizon queue touches only
    /// the low levels, keeping the idle footprint small.
    #[test]
    fn untouched_levels_stay_unallocated() {
        let q: WheelQueue<u32> = WheelQueue::new();
        assert_eq!(
            q.retained_bytes(),
            0,
            "a fresh queue must own no heap buffers"
        );
        let mut q = WheelQueue::new();
        q.schedule(Time::from_ns(1), 1u32);
        let one_level = q.retained_bytes();
        assert!(
            one_level <= std::mem::size_of::<Level<u32>>(),
            "a near-term schedule must allocate at most one level"
        );
    }

    #[test]
    fn clamp_count_is_zero_for_causal_schedules() {
        let mut q = WheelQueue::new();
        q.schedule(Time::from_us(1), ());
        q.pop();
        q.schedule_in(Time::from_us(1), ());
        assert_eq!(q.clamp_count(), 0);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_clamps_past_scheduling() {
        let mut q = WheelQueue::new();
        q.schedule(Time::from_us(10), 1u32);
        q.pop();
        q.schedule(Time::from_us(1), 2); // in the past: clamped to now
        assert_eq!(q.clamp_count(), 1, "the clamp must be visible in a stat");
        assert_eq!(q.pop().unwrap(), (Time::from_us(10), 2));
    }
}
