//! Hierarchical timing-wheel event scheduler.
//!
//! A drop-in replacement for the binary-heap [`HeapQueue`](crate::HeapQueue)
//! honoring the identical `(time, seq)` total-order contract: pops are
//! nondecreasing in time, and events scheduled for the same instant fire
//! in scheduling order. Same (config, seed) runs therefore produce
//! byte-identical event traces under either scheduler — the differential
//! property tests in `tests/proptests.rs` drive both against each other.
//!
//! # Structure
//!
//! The full 64-bit nanosecond time domain is covered by [`LEVELS`] wheels
//! of [`SLOTS`] slots each; level `l` slots have a granularity of
//! `2^(6·l)` ns. An event due at absolute time `at` while the wheel
//! cursor sits at `now` lives at
//!
//! ```text
//! level = msb(at ^ now) / 6          (bit index of the highest differing bit)
//! slot  = (at >> (6 · level)) & 63   (the time's digit at that level)
//! ```
//!
//! Two consequences of this placement drive the whole design:
//!
//! * **No intra-level wraparound.** At its own level an event's slot digit
//!   is strictly greater than the cursor's digit (a smaller digit would
//!   mean `at < now`), so the first occupied slot of a level — a single
//!   `trailing_zeros` on the occupancy bitmap — holds the level's minimum.
//! * **Levels are time-ordered.** Every level-`l+1` event is strictly
//!   later than every level-`l` event, so the global minimum is the
//!   first occupied slot of the lowest occupied level: `peek_time` is
//!   O(levels) with no mutation and no cached state to invalidate.
//!
//! Popping jumps the cursor directly to the next event's timestamp and
//! *cascades*: slots indexed by the new cursor position ("pos slots") are
//! drained top-down and their events re-placed relative to the new cursor
//! — each strictly descends in level, events due exactly now land in a
//! `ready` queue sorted by seq to restore FIFO order. The jump skips
//! empty slots entirely, so sparse far-future schedules (RTO timers,
//! fault injections) cost O(levels), not O(elapsed ticks).

use std::collections::VecDeque;

use crate::Time;

/// log2 of the slot count per level.
const BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << BITS;
/// Wheel levels; 11 × 6 = 66 bits covers the full `u64` nanosecond domain.
const LEVELS: usize = 11;

/// A scheduled event: absolute due time plus the global schedule sequence
/// number that breaks same-instant ties FIFO.
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

/// A deterministic future-event list backed by a hierarchical timing
/// wheel.
///
/// Semantics match [`HeapQueue`](crate::HeapQueue) exactly:
///
/// * Pops in nondecreasing time order.
/// * Ties broken by scheduling order (FIFO among same-instant events).
/// * Tracks `now`, the time of the most recently popped event, and
///   rejects scheduling into the past (debug assertion; release clamps).
pub struct WheelQueue<E> {
    /// `LEVELS × SLOTS` buckets, row-major by level. Buckets keep their
    /// allocation across drains (buffers rotate through `scratch`).
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Minimum due time per bucket (`Time::MAX` when empty). Exact,
    /// because buckets are only ever drained whole, never partially.
    slot_min: Vec<Time>,
    /// Events due exactly at the cursor, in seq (FIFO) order.
    ready: VecDeque<Entry<E>>,
    /// Reusable drain buffer so cascades don't allocate.
    scratch: Vec<Entry<E>>,
    /// Time of the most recently popped event; also the wheel cursor all
    /// placements are relative to.
    now: Time,
    seq: u64,
    len: usize,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelQueue<E> {
    /// An empty queue with `now == Time::ZERO`.
    pub fn new() -> Self {
        let mut slots = Vec::new();
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        WheelQueue {
            slots,
            occupied: [0; LEVELS],
            slot_min: vec![Time::MAX; LEVELS * SLOTS],
            ready: VecDeque::new(),
            scratch: Vec::new(),
            now: Time::ZERO,
            seq: 0,
            len: 0,
        }
    }

    /// The time of the most recently popped event (simulated "now").
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling strictly before `now` is a logic error in the caller
    /// (events cannot fire in the past); debug builds assert, release
    /// builds clamp to `now` to stay safe.
    pub fn schedule(&mut self, at: Time, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let e = Entry {
            at,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.len += 1;
        if at == self.now {
            // A fresh schedule carries the largest seq seen so far, so
            // its FIFO position among the due-now events is the back.
            self.ready.push_back(e);
        } else {
            self.place(e);
        }
    }

    /// Schedule `payload` to fire `delay` after `now`.
    pub fn schedule_in(&mut self, delay: Time, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.ready.is_empty() {
            // Jump the cursor straight to the next occupied instant and
            // re-bucket everything the jump strands in a pos slot.
            let target = self.wheel_min()?;
            debug_assert!(target >= self.now, "event queue went backwards");
            self.now = target;
            self.cascade();
            debug_assert!(
                !self.ready.is_empty(),
                "cascade must surface the event at the jump target"
            );
        }
        let e = self.ready.pop_front()?;
        self.len -= 1;
        debug_assert!(e.at == self.now, "ready event not at cursor");
        self.now = e.at;
        Some((e.at, e.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(e) = self.ready.front() {
            return Some(e.at);
        }
        self.wheel_min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }

    /// Bucket an entry with `at > now` relative to the current cursor.
    fn place(&mut self, e: Entry<E>) {
        let at = e.at.as_ns();
        let xor = at ^ self.now.as_ns();
        debug_assert!(xor != 0, "due-now events belong in `ready`");
        // msb index of the xor picks the level; the time's digit at that
        // level picks the slot. msb ≤ 63 ⇒ level ≤ 10 ⇒ shift ≤ 60.
        let level = ((63 - xor.leading_zeros()) / BITS) as usize;
        let slot = ((at >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let idx = level * SLOTS + slot;
        // ANALYZER: allow(panic-surface, level = msb(xor)/6 <= 10 < LEVELS since msb <= 63)
        self.occupied[level] |= 1 << slot;
        // ANALYZER: allow(panic-surface, idx < LEVELS*SLOTS: level bounded above and slot is masked to SLOTS-1)
        if e.at < self.slot_min[idx] {
            // ANALYZER: allow(panic-surface, same idx bound as the read above)
            self.slot_min[idx] = e.at;
        }
        self.slots[idx].push(e); // ANALYZER: allow(panic-surface, same idx bound as slot_min)
    }

    /// Minimum due time across all bucketed events (excludes `ready`).
    fn wheel_min(&self) -> Option<Time> {
        for level in 0..LEVELS {
            let occ = self.occupied[level]; // ANALYZER: allow(panic-surface, level ranges over 0..LEVELS)
            if occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                // ANALYZER: allow(panic-surface, occ != 0 so slot <= 63 < SLOTS; level < LEVELS)
                return Some(self.slot_min[level * SLOTS + slot]);
            }
        }
        None
    }

    /// Drain every slot indexed by the (just-moved) cursor, top level
    /// down, re-placing each event relative to the new cursor. Events due
    /// exactly now go to `ready`; everything else descends strictly in
    /// level, so one pass suffices. Higher-level events never interleave
    /// behind lower-level ones incorrectly because `ready` is re-sorted
    /// by seq at the end (seqs are unique, so the order is total).
    fn cascade(&mut self) {
        let now_ns = self.now.as_ns();
        let mut scratch = std::mem::take(&mut self.scratch);
        for level in (0..LEVELS).rev() {
            let pos = ((now_ns >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            let bit = 1u64 << pos;
            // ANALYZER: allow(panic-surface, level ranges over 0..LEVELS)
            if self.occupied[level] & bit == 0 {
                continue;
            }
            self.occupied[level] &= !bit; // ANALYZER: allow(panic-surface, level ranges over 0..LEVELS)
            let idx = level * SLOTS + pos;
            // ANALYZER: allow(panic-surface, idx < LEVELS*SLOTS: pos is masked to SLOTS-1)
            self.slot_min[idx] = Time::MAX;
            // Swap the bucket's buffer out (scratch is empty here), so
            // both allocations survive and rotate instead of churning.
            // ANALYZER: allow(panic-surface, same idx bound as slot_min)
            std::mem::swap(&mut self.slots[idx], &mut scratch);
            for e in scratch.drain(..) {
                if e.at == self.now {
                    self.ready.push_back(e);
                } else {
                    self.place(e);
                }
            }
        }
        self.scratch = scratch;
        self.ready.make_contiguous().sort_unstable_by_key(|e| e.seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = WheelQueue::new();
        q.schedule(Time::from_us(3), 3u32);
        q.schedule(Time::from_us(1), 1);
        q.schedule(Time::from_us(2), 2);
        assert_eq!(q.pop().unwrap(), (Time::from_us(1), 1));
        assert_eq!(q.pop().unwrap(), (Time::from_us(2), 2));
        assert_eq!(q.pop().unwrap(), (Time::from_us(3), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = WheelQueue::new();
        for i in 0..100u32 {
            q.schedule(Time::from_us(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = WheelQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time::from_us(10), ());
        q.pop();
        assert_eq!(q.now(), Time::from_us(10));
        q.schedule_in(Time::from_us(5), ());
        assert_eq!(q.peek_time(), Some(Time::from_us(15)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = WheelQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::from_us(1), ());
        q.schedule(Time::from_us(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }

    /// Same-instant events that start life at *different wheel levels*
    /// (one bucketed before a cursor move, one after) must still pop
    /// FIFO. This is the stale-pos-slot cascade path.
    #[test]
    fn equal_times_across_levels_stay_fifo() {
        let mut q = WheelQueue::new();
        // At now=0: both land at level 1, slot 1 (digits of 100 and 70).
        q.schedule(Time::from_ns(100), "a");
        q.schedule(Time::from_ns(70), "b");
        assert_eq!(q.pop().unwrap(), (Time::from_ns(70), "b"));
        // After the cursor jump to 70, "a" was cascaded to level 0.
        // "c" joins it at the same instant but with a larger seq.
        q.schedule(Time::from_ns(100), "c");
        assert_eq!(q.pop().unwrap(), (Time::from_ns(100), "a"));
        assert_eq!(q.pop().unwrap(), (Time::from_ns(100), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn level_boundaries_cascade_correctly() {
        // Straddle the 64-ns (level 0/1) and 4096-ns (level 1/2)
        // boundaries in one run.
        let mut q = WheelQueue::new();
        for at in [63u64, 64, 65, 4095, 4096, 4097] {
            q.schedule(Time::from_ns(at), at);
        }
        for want in [63u64, 64, 65, 4095, 4096, 4097] {
            let (t, v) = q.pop().unwrap();
            assert_eq!((t, v), (Time::from_ns(want), want));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_jumps_skip_empty_slots() {
        let mut q = WheelQueue::new();
        q.schedule(Time::from_secs(3600), 1u32);
        q.schedule(Time::from_ns(1), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.peek_time(), Some(Time::from_secs(3600)));
        assert_eq!(q.pop().unwrap(), (Time::from_secs(3600), 1));
        assert_eq!(q.now(), Time::from_secs(3600));
    }

    #[test]
    fn max_time_is_representable() {
        let mut q = WheelQueue::new();
        q.schedule(Time::MAX, "sentinel");
        q.schedule(Time::from_ns(5), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap(), (Time::MAX, "sentinel"));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_matches_heap() {
        // Cheap deterministic LCG-driven differential run against the
        // heap; the heavier randomized version lives in tests/proptests.rs.
        let mut wheel = WheelQueue::new();
        let mut heap = crate::HeapQueue::new();
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..2000u32 {
            let delay = Time::from_ns(next() % 10_000);
            wheel.schedule_in(delay, round);
            heap.schedule_in(delay, round);
            if next() % 3 == 0 {
                assert_eq!(wheel.pop(), heap.pop());
                assert_eq!(wheel.now(), heap.now());
            }
            assert_eq!(wheel.peek_time(), heap.peek_time());
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_clamps_past_scheduling() {
        let mut q = WheelQueue::new();
        q.schedule(Time::from_us(10), 1u32);
        q.pop();
        q.schedule(Time::from_us(1), 2); // in the past: clamped to now
        assert_eq!(q.pop().unwrap(), (Time::from_us(10), 2));
    }
}
