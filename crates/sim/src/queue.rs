//! Binary-heap event queue — the original scheduler, kept as the
//! reference implementation and `heap-queue` feature fallback for the
//! timing wheel in [`crate::wheel`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Time;

/// An entry in the heap. Ordering is `(time, seq)` — earliest time first,
/// and for equal times, earliest *scheduled* first. `BinaryHeap` is a
/// max-heap, so comparisons are reversed.
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (time, seq) = greater priority.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
///
/// * Pops in nondecreasing time order.
/// * Ties broken by scheduling order (FIFO among same-instant events),
///   which makes simulations reproducible regardless of heap internals.
/// * Tracks `now`, the time of the most recently popped event, and
///   rejects scheduling into the past (debug assertion).
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Time,
    /// Past-time schedules clamped to `now` (release builds); see
    /// [`HeapQueue::clamp_count`].
    clamped: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// An empty queue with `now == Time::ZERO`.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            clamped: 0,
        }
    }

    /// The time of the most recently popped event (simulated "now").
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling strictly before `now` is a logic error in the caller
    /// (events cannot fire in the past); debug builds assert, release
    /// builds clamp to `now` to stay safe — and count the clamp so the
    /// causality violation stays visible (see [`Self::clamp_count`]).
    pub fn schedule(&mut self, at: Time, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedule `payload` to fire `delay` after `now`.
    pub fn schedule_in(&mut self, delay: Time, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "event queue went backwards");
        self.now = e.at;
        Some((e.at, e.payload))
    }

    /// Advance the cursor to `t` without popping anything.
    ///
    /// Contract: `t >= now`, and no pending event may be due strictly
    /// before `t`. Used by packet-train batching when the caller has
    /// proven `t` is the next instant and handles it without a
    /// scheduler round-trip.
    pub fn advance_to(&mut self, t: Time) {
        debug_assert!(
            t >= self.now,
            "advance_to went backwards: {t} < {}",
            self.now
        );
        debug_assert!(
            self.peek_time().is_none_or(|p| p >= t),
            "advance_to must not pass pending events"
        );
        self.now = t;
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }

    /// Past-time schedules that release builds clamped to `now`.
    /// Always 0 in a causality-respecting run; debug builds assert
    /// instead of counting.
    pub fn clamp_count(&self) -> u64 {
        self.clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = HeapQueue::new();
        q.schedule(Time::from_us(3), 3u32);
        q.schedule(Time::from_us(1), 1);
        q.schedule(Time::from_us(2), 2);
        assert_eq!(q.pop().unwrap(), (Time::from_us(1), 1));
        assert_eq!(q.pop().unwrap(), (Time::from_us(2), 2));
        assert_eq!(q.pop().unwrap(), (Time::from_us(3), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = HeapQueue::new();
        for i in 0..100u32 {
            q.schedule(Time::from_us(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = HeapQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time::from_us(10), ());
        q.pop();
        assert_eq!(q.now(), Time::from_us(10));
        // schedule_in is relative to the popped time.
        q.schedule_in(Time::from_us(5), ());
        assert_eq!(q.peek_time(), Some(Time::from_us(15)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = HeapQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::from_us(1), ());
        q.schedule(Time::from_us(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn advance_to_moves_now_without_popping() {
        let mut q = HeapQueue::new();
        q.schedule(Time::from_us(10), 1u32);
        q.advance_to(Time::from_us(10));
        assert_eq!(q.now(), Time::from_us(10));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap(), (Time::from_us(10), 1));
        q.advance_to(Time::from_us(25));
        assert_eq!(q.now(), Time::from_us(25));
        assert!(q.pop().is_none());
    }

    #[test]
    fn clamp_count_is_zero_for_causal_schedules() {
        let mut q = HeapQueue::new();
        q.schedule(Time::from_us(1), ());
        q.pop();
        q.schedule_in(Time::from_us(1), ());
        assert_eq!(q.clamp_count(), 0);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_clamps_past_scheduling() {
        let mut q = HeapQueue::new();
        q.schedule(Time::from_us(10), 1u32);
        q.pop();
        q.schedule(Time::from_us(1), 2); // in the past: clamped to now
        assert_eq!(q.clamp_count(), 1, "the clamp must be visible in a stat");
        assert_eq!(q.pop().unwrap(), (Time::from_us(10), 2));
    }
}
