//! Seeded, splittable randomness for reproducible simulations.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna)
//! seeded through a SplitMix64 expansion. Keeping the implementation in
//! this file — rather than behind an external crate — pins the exact
//! stream forever: no dependency bump can silently re-randomize every
//! experiment in the repository.

/// The simulation RNG.
///
/// A fast non-cryptographic PRNG, seeded explicitly so every run is
/// reproducible. Subsystems that need independent random streams (flow
/// generator, per-host load balancers, failure injection) should call
/// [`SimRng::split`] with a distinct label rather than sharing one
/// stream — that way adding a random draw in one subsystem does not
/// perturb any other subsystem's stream.
pub struct SimRng {
    /// xoshiro256++ state; never all-zero.
    s: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Create from a master seed.
    pub fn new(seed: u64) -> SimRng {
        // SplitMix64 expansion of the 64-bit seed into 256 bits of
        // state, per the xoshiro author's seeding recommendation. The
        // four outputs of a bijective step function cannot all be zero,
        // so the all-zero fixed point is unreachable.
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = mix64(sm);
        }
        SimRng { s, seed }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream labelled by `label`.
    ///
    /// Uses a SplitMix64-style mix of `(seed, label)` so the derived seeds
    /// are decorrelated even for adjacent labels.
    pub fn split(&self, label: u64) -> SimRng {
        SimRng::new(mix64(
            self.seed ^ mix64(label.wrapping_add(0x9E37_79B9_7F4A_7C15)),
        ))
    }

    /// One xoshiro256++ step.
    #[inline]
    fn next(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits → the standard dyadic-rational construction.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Lemire's multiply-shift map. The bias is at most n/2^64 —
        // unobservable at simulation scales — and unlike rejection
        // sampling it consumes exactly one draw, which keeps downstream
        // streams aligned regardless of the argument.
        ((self.next() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `u64` over the full range.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.next()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for Poisson-process inter-arrival times. The `1 - u` guards
    /// against `ln(0)`.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = self.f64();
        -(1.0 - u).ln() * mean
    }

    /// Choose `k` distinct indices uniformly from `[0, n)` without
    /// replacement (partial Fisher–Yates). If `k >= n`, returns all of
    /// `0..n` in shuffled order.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// SplitMix64 finalizer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_streams_are_decorrelated_and_stable() {
        let root = SimRng::new(7);
        let mut s1 = root.split(1);
        let mut s2 = root.split(2);
        let mut s1b = root.split(1);
        assert_eq!(s1.u64(), s1b.u64());
        assert_ne!(s1.u64(), s2.u64());
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut r = SimRng::new(3);
        let n = 50_000;
        let mean = 10.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() < 0.25, "sample mean {got}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = SimRng::new(9);
        for _ in 0..100 {
            let v = r.sample_distinct(10, 3);
            assert_eq!(v.len(), 3);
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "duplicates in {v:?}");
            assert!(v.iter().all(|&x| x < 10));
        }
        // k >= n returns a permutation.
        let mut v = r.sample_distinct(4, 10);
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = SimRng::new(13);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x), "f64 out of range: {x}");
        }
    }

    #[test]
    fn stream_is_pinned_forever() {
        // Golden values: if these change, every recorded experiment in
        // the repository silently re-randomizes. Never update them.
        let mut r = SimRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.u64()).collect();
        assert_eq!(
            first,
            vec![
                6409272458699751175,
                6888991682673849350,
                7292715602953447895,
                3353322912996036996
            ]
        );
    }
}
