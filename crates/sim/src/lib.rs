//! # hermes-sim — deterministic discrete-event simulation engine
//!
//! This crate provides the minimal substrate that every other crate in
//! the Hermes reproduction builds on:
//!
//! * [`Time`] — simulated time in integer nanoseconds, with convenience
//!   constructors ([`Time::from_us`], [`Time::from_ms`], …) and saturating
//!   arithmetic.
//! * [`EventQueue`] — a priority queue of `(Time, payload)` entries with
//!   *deterministic tie-breaking*: events scheduled for the same instant
//!   fire in the order they were scheduled. Together with the seeded
//!   [`SimRng`], this makes every simulation bit-reproducible. Two
//!   implementations honor the identical contract — the hierarchical
//!   timing wheel [`WheelQueue`] (default) and the binary-heap
//!   [`HeapQueue`] (select with `--features heap-queue`); the alias
//!   picks one, and both are always compiled so differential tests can
//!   drive them against each other.
//! * [`SimRng`] — a seeded, splittable random number generator wrapper so
//!   that independent subsystems (flow generation, load balancers, failure
//!   injection) can draw from decorrelated streams derived from one master
//!   seed.
//!
//! The dispatch loop is synchronous: a packet-level fabric simulation
//! is CPU-bound with totally ordered events, so an async runtime would
//! add nondeterminism for no benefit. Intra-run parallelism is layered
//! *underneath* that total order instead: [`ShardedQueue`] partitions
//! pending events across per-shard wheels and merges them back in
//! deterministic `(time, seq)` order, so digests and goldens stay
//! byte-identical at any thread count (see `DESIGN.md` §17).
//!
//! ```
//! use hermes_sim::{EventQueue, Time};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Time::from_us(5), "b");
//! q.schedule(Time::from_us(1), "a");
//! q.schedule(Time::from_us(5), "c"); // same time as "b", scheduled later
//!
//! assert_eq!(q.pop().unwrap().1, "a");
//! assert_eq!(q.pop().unwrap().1, "b");
//! assert_eq!(q.pop().unwrap().1, "c");
//! ```

mod queue;
mod rng;
mod shard;
mod time;
mod wheel;

pub use queue::HeapQueue;
pub use rng::SimRng;
pub use shard::{conservative_horizon, MergeDefect, Scheduler, ShardStats, ShardedQueue};
pub use time::Time;
pub use wheel::WheelQueue;

/// The event queue the simulator runs on. Both implementations honor the
/// same `(time, seq)` total-order contract, so flipping the feature must
/// not change any event trace — CI's perf-smoke job asserts exactly that
/// by comparing same-seed digests across schedulers.
#[cfg(feature = "heap-queue")]
pub type EventQueue<E> = HeapQueue<E>;
/// The event queue the simulator runs on (timing wheel, default).
#[cfg(not(feature = "heap-queue"))]
pub type EventQueue<E> = WheelQueue<E>;

/// Which scheduler backs [`EventQueue`] in this build; surfaced by the
/// perf harness so BENCH_perf.json rows are self-describing.
#[cfg(feature = "heap-queue")]
pub const SCHEDULER: &str = "heap";
/// Which scheduler backs [`EventQueue`] in this build (timing wheel).
#[cfg(not(feature = "heap-queue"))]
pub const SCHEDULER: &str = "wheel";
