//! Sharded event scheduling: the deterministic `(time, seq)` merge core
//! behind `Simulation::run_parallel` and the conservative-window drain
//! engine in `hermes-net`.
//!
//! A [`ShardedQueue`] partitions pending events across N per-shard
//! [`WheelQueue`]s while preserving the *exact* total order a single
//! [`EventQueue`] would produce: every `schedule_to` stamps a global
//! monotone sequence number, pops take the earliest time across all
//! shards, and cross-shard ties at the same instant are broken by that
//! global stamp. The result is byte-identical event traces (and hence
//! digests and conformance goldens) regardless of how events are
//! distributed across shards or how many threads drain them.
//!
//! The [`Scheduler`] trait abstracts the queue API that `hermes-net`'s
//! fabric needs, so the fabric can run against a plain queue, a sharded
//! queue, or the runtime's routing wrapper without code changes.
//!
//! [`conservative_horizon`] is the lookahead rule shared with the
//! parallel drain engine: with `L` = the minimum cross-shard link delay,
//! every event strictly before `min(shard heads) + L` can only create
//! new cross-shard work at or after that horizon, so shards may process
//! their own windows concurrently without ever admitting an event
//! earlier than a neighbor's safe horizon.
//!
//! [`EventQueue`]: crate::EventQueue

use crate::{Time, WheelQueue};

/// The queue surface the fabric and runtime schedule through. Both
/// concrete queues ([`WheelQueue`], [`crate::HeapQueue`]) implement it
/// by delegation, as does the runtime's shard-routing wrapper; the
/// contract is identical to [`crate::EventQueue`]'s inherent API.
pub trait Scheduler<E> {
    /// The time of the most recently popped event (simulated "now").
    fn now(&self) -> Time;
    /// Schedule `payload` at absolute time `at` (`at >= now`).
    fn schedule(&mut self, at: Time, payload: E);
    /// Schedule `payload` to fire `delay` after `now`.
    fn schedule_in(&mut self, delay: Time, payload: E) {
        self.schedule(self.now() + delay, payload);
    }
    /// Pop the earliest event, advancing `now` to its timestamp.
    fn pop(&mut self) -> Option<(Time, E)>;
    /// Advance the cursor to `t` without popping (see the inherent
    /// `advance_to` contract: `t >= now`, no pending event before `t`).
    fn advance_to(&mut self, t: Time);
    /// Timestamp of the next event without popping it. `&mut` because
    /// sharded implementations refresh cached shard heads here.
    fn peek_time(&mut self) -> Option<Time>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total events ever scheduled (monotone).
    fn scheduled_count(&self) -> u64;
    /// Past-time schedules clamped to `now` (0 in a causal run).
    fn clamp_count(&self) -> u64;
}

macro_rules! delegate_scheduler {
    ($ty:ident) => {
        impl<E> Scheduler<E> for crate::$ty<E> {
            fn now(&self) -> Time {
                self.now()
            }
            fn schedule(&mut self, at: Time, payload: E) {
                self.schedule(at, payload);
            }
            fn schedule_in(&mut self, delay: Time, payload: E) {
                self.schedule_in(delay, payload);
            }
            fn pop(&mut self) -> Option<(Time, E)> {
                self.pop()
            }
            fn advance_to(&mut self, t: Time) {
                self.advance_to(t);
            }
            fn peek_time(&mut self) -> Option<Time> {
                Self::peek_time(self)
            }
            fn len(&self) -> usize {
                self.len()
            }
            fn is_empty(&self) -> bool {
                self.is_empty()
            }
            fn scheduled_count(&self) -> u64 {
                self.scheduled_count()
            }
            fn clamp_count(&self) -> u64 {
                self.clamp_count()
            }
        }
    };
}

delegate_scheduler!(WheelQueue);
delegate_scheduler!(HeapQueue);

/// Per-shard merge counters, surfaced through `SimStats` and the
/// selfcheck fingerprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events popped from this shard.
    pub events: u64,
    /// Events scheduled into this shard from a *different* shard's
    /// dispatch (cross-shard handoffs received).
    pub handoffs: u64,
    /// Merge-level past-time clamps charged to this shard (0 in a
    /// causal run; the detection channel for lookahead violations).
    pub clamps: u64,
    /// Pops during which this shard's head sat at or beyond the chosen
    /// event's conservative horizon (`t + lookahead`) — under a
    /// parallel conservative drain this shard would have stalled.
    pub stalls: u64,
}

/// Deliberately defective merge policies for the conformance checker
/// self-test: each seam breaks exactly one clause of the determinism
/// contract so the planted-defect fixtures can prove the digest and
/// invariant checkers actually catch it.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeDefect {
    /// Correct `(time, global seq)` merge.
    #[default]
    None,
    /// Break cross-shard ties by *highest shard index* instead of the
    /// global schedule stamp — same event set, wrong order whenever two
    /// shards hold events for the same instant.
    DropSeqTiebreak,
    /// Pop from the lowest-index shard whose head is inside
    /// `min + lookahead` instead of the true global minimum — the
    /// over-advanced shard can then observe time running backwards,
    /// which the merge clamps and counts (`clamps > 0` trips the
    /// invariant checker).
    OverAdvanceLookahead,
}

/// The conservative-synchronization horizon: with every shard's next
/// event time in `heads` (`None` = idle shard) and `lookahead` = the
/// minimum cross-shard propagation+serialization delay, every event
/// strictly before the returned time is safe to process without
/// observing any not-yet-delivered cross-shard event. `None` when all
/// shards are idle.
pub fn conservative_horizon(heads: &[Option<Time>], lookahead: Time) -> Option<Time> {
    heads.iter().flatten().min().map(|&m| m + lookahead)
}

/// One stashed shard head: popped out of its wheel during tie
/// resolution, waiting to be merged. Ordered by `(at, gseq)`.
struct Stashed<E> {
    at: Time,
    gseq: u64,
    payload: E,
}

/// One shard's state: its wheel, the one-deep tie-resolution stash, a
/// cached head time, and the per-shard merge counters.
struct Slot<E> {
    wheel: WheelQueue<(u64, E)>,
    stash: Option<Stashed<E>>,
    /// Cached earliest pending time; `dirty` marks it for recompute.
    head: Option<Time>,
    dirty: bool,
    stats: ShardStats,
}

impl<E> Slot<E> {
    fn new() -> Self {
        Slot {
            wheel: WheelQueue::new(),
            stash: None,
            head: None,
            dirty: false,
            stats: ShardStats::default(),
        }
    }

    /// Refresh the cached head time from the stash and the wheel.
    fn refresh_head(&mut self) {
        let stash_at = self.stash.as_ref().map(|e| e.at);
        let wheel_at = self.wheel.peek_time();
        self.head = match (stash_at, wheel_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.dirty = false;
    }

    /// Ensure this shard's head entry sits in its stash (pop the wheel
    /// head into the stash when the wheel holds the earlier-or-equal
    /// entry). Within a shard the stash always *precedes* wheel entries
    /// at the same instant: it was popped out of the wheel, so anything
    /// still queued at that time carries a later FIFO position and
    /// therefore a larger `gseq`.
    fn stash_head(&mut self) {
        if self.stash.is_none() {
            if let Some((at, (gseq, payload))) = self.wheel.pop() {
                self.stash = Some(Stashed { at, gseq, payload });
            }
        }
    }
}

/// N per-shard timing wheels merged into one deterministic total order.
///
/// Determinism argument, in three parts:
///
/// 1. *Within a shard*: the wheel pops in `(time, local FIFO)` order,
///    and `schedule_to` stamps a global monotone `gseq` before
///    insertion, so within a shard FIFO order *is* `gseq` order for
///    equal times.
/// 2. *Across shards, distinct times*: the merge always takes the
///    global minimum head time.
/// 3. *Across shards, equal times*: tied heads are popped into a
///    one-deep stash per shard and the smallest `gseq` wins — exactly
///    the schedule-order tiebreak a single queue applies.
///
/// Together: the pop sequence equals the single-queue `(time, seq)`
/// order for the same schedule calls, for any shard assignment.
pub struct ShardedQueue<E> {
    slots: Vec<Slot<E>>,
    gseq: u64,
    now: Time,
    merge_clamps: u64,
    /// Shard that produced the most recent pop — schedules targeting a
    /// different shard while it dispatches are cross-shard handoffs.
    current: Option<usize>,
    lookahead: Time,
    defect: MergeDefect,
}

impl<E> ShardedQueue<E> {
    /// An empty queue over `n_shards` shards. `lookahead` is the
    /// cross-shard delay bound used for the stall diagnostic and the
    /// over-advance defect seam (it does not affect the merge order).
    pub fn new(n_shards: usize, lookahead: Time) -> Self {
        Self::with_defect(n_shards, lookahead, MergeDefect::None)
    }

    /// A queue with a deliberately broken merge policy — checker
    /// self-test plumbing only.
    #[doc(hidden)]
    pub fn with_defect(n_shards: usize, lookahead: Time, defect: MergeDefect) -> Self {
        assert!(n_shards >= 1, "a sharded queue needs at least one shard");
        ShardedQueue {
            slots: (0..n_shards).map(|_| Slot::new()).collect(),
            gseq: 0,
            now: Time::ZERO,
            merge_clamps: 0,
            current: None,
            lookahead,
            defect,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.slots.len()
    }

    /// The configured cross-shard lookahead bound.
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// Per-shard merge counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.slots.iter().map(|s| s.stats).collect()
    }

    /// Schedule `payload` at `at` into `shard`'s wheel, stamped with
    /// the next global sequence number. Past-time schedules clamp to
    /// the merge cursor and are counted against the target shard.
    pub fn schedule_to(&mut self, shard: usize, at: Time, payload: E) {
        debug_assert!(
            self.defect != MergeDefect::None || at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let clamped = at < self.now;
        let at = at.max(self.now);
        let cross = self.current.is_some_and(|cur| cur != shard);
        let gseq = self.gseq;
        self.gseq += 1;
        if clamped {
            self.merge_clamps += 1;
        }
        // ANALYZER: allow(panic-surface, shard indices come from the caller's routing map and an out-of-range shard is a wiring bug worth a loud stop)
        let slot = &mut self.slots[shard];
        if clamped {
            slot.stats.clamps += 1;
        }
        if cross {
            slot.stats.handoffs += 1;
        }
        slot.wheel.schedule(at, (gseq, payload));
        // Fold the new time into the cached head only when the cache is
        // live; a stale (dirty) cache stays stale and is recomputed on
        // the next refresh pass.
        if !slot.dirty {
            match slot.head {
                Some(h) if h <= at => {}
                _ => slot.head = Some(at),
            }
        }
    }

    /// Refresh every stale cached head time.
    fn refresh_heads(&mut self) {
        for slot in &mut self.slots {
            if slot.dirty {
                slot.refresh_head();
            }
        }
    }

    /// Pick the shard to pop from among those whose head time equals
    /// the global minimum `t_min`, honoring the configured defect seam.
    fn choose(&mut self, t_min: Time) -> Option<usize> {
        let tied: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.head == Some(t_min))
            .map(|(i, _)| i)
            .collect();
        if tied.len() == 1 || self.defect == MergeDefect::DropSeqTiebreak {
            // Single head, no tie to resolve — or the seam, which
            // resolves ties by highest shard index instead of schedule
            // order: deterministically wrong whenever it matters.
            return tied.last().copied();
        }
        // Correct path: materialize each tied head's gseq and take the
        // globally earliest-scheduled one.
        let mut best: Option<(u64, usize)> = None;
        for &s in &tied {
            // ANALYZER: allow(panic-surface, tie indices were produced by enumerate over this same vec a few lines up)
            let slot = &mut self.slots[s];
            slot.stash_head();
            if let Some(st) = &slot.stash {
                if best.is_none_or(|(g, _)| st.gseq < g) {
                    best = Some((st.gseq, s));
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Pop the globally earliest event in `(time, gseq)` order.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.refresh_heads();
        let t_min = self.slots.iter().filter_map(|s| s.head).min()?;
        let chosen = if self.defect == MergeDefect::OverAdvanceLookahead {
            // Seam: treat the whole lookahead window as poppable and
            // take the lowest-index shard inside it — events can come
            // back out of order, which the merge clamp then exposes.
            let horizon = t_min + self.lookahead;
            self.slots
                .iter()
                .position(|s| s.head.is_some_and(|h| h < horizon))?
        } else {
            self.choose(t_min)?
        };
        // ANALYZER: allow(panic-surface, chosen was produced by position/choose over this same vec)
        let slot = &mut self.slots[chosen];
        slot.stash_head();
        debug_assert!(slot.stash.is_some(), "chosen shard has a head");
        let e = slot.stash.take()?;
        slot.dirty = true;
        // A correct merge never travels backwards; the over-advance
        // seam does, and this clamp is what makes that observable.
        if e.at < self.now {
            self.merge_clamps += 1;
            slot.stats.clamps += 1;
        }
        slot.stats.events += 1;
        // Conservative-parallelism diagnostic: shards whose next event
        // sits at or beyond the chosen event's horizon would have been
        // barred from running it concurrently.
        let horizon = e.at + self.lookahead;
        for (s, slot) in self.slots.iter_mut().enumerate() {
            if s != chosen && slot.head.is_some_and(|h| h >= horizon) {
                slot.stats.stalls += 1;
            }
        }
        self.now = e.at.max(self.now);
        self.current = Some(chosen);
        Some((self.now, e.payload))
    }

    /// Advance the merge cursor without popping (train batching).
    pub fn advance_to(&mut self, t: Time) {
        debug_assert!(
            t >= self.now,
            "advance_to went backwards: {t} < {}",
            self.now
        );
        debug_assert!(
            self.peek_time().is_none_or(|p| p >= t),
            "advance_to must not pass pending events"
        );
        self.now = t;
    }

    /// The merge cursor.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Earliest pending timestamp across all shards.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.refresh_heads();
        self.slots.iter().filter_map(|s| s.head).min()
    }

    /// Every shard's earliest pending timestamp (`None` = idle shard),
    /// refreshed — the head vector [`conservative_horizon`] consumes.
    pub fn shard_heads(&mut self) -> Vec<Option<Time>> {
        self.refresh_heads();
        self.slots.iter().map(|s| s.head).collect()
    }

    /// Total pending events (stashes included).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.wheel.len() + usize::from(s.stash.is_some()))
            .sum()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled (the global stamp counter).
    pub fn scheduled_count(&self) -> u64 {
        self.gseq
    }

    /// Merge-level past-time clamps plus any per-wheel clamps. 0 in a
    /// causal run — the invariant checker enforces exactly that.
    pub fn clamp_count(&self) -> u64 {
        self.merge_clamps
            + self
                .slots
                .iter()
                .map(|s| s.wheel.clamp_count())
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    /// Drive a sharded queue and a single queue with the same schedule
    /// script (shard chosen by a deterministic hash) and require the
    /// identical pop sequence.
    #[test]
    fn merge_matches_single_queue_reference() {
        let mut sq: ShardedQueue<u32> = ShardedQueue::new(4, Time::from_us(10));
        let mut rq: EventQueue<u32> = EventQueue::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut t = 0u64;
        for i in 0..2_000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Dense same-instant collisions: advance time only sometimes.
            if x & 3 == 0 {
                t += x >> 60;
            }
            let at = Time::from_ns(t);
            sq.schedule_to((x >> 8) as usize % 4, at, i);
            rq.schedule(at, i);
            // Interleave pops so `now` advances and later schedules tie
            // with already-stashed heads.
            if x & 7 == 0 {
                assert_eq!(sq.pop(), rq.pop());
            }
        }
        loop {
            let (a, b) = (sq.pop(), rq.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(sq.clamp_count(), 0);
        assert_eq!(sq.scheduled_count(), 2_000);
        let events: u64 = sq.shard_stats().iter().map(|s| s.events).sum();
        assert_eq!(events, 2_000);
    }

    #[test]
    fn cross_shard_ties_break_by_schedule_order() {
        let mut sq: ShardedQueue<&str> = ShardedQueue::new(3, Time::ZERO);
        let t = Time::from_us(5);
        sq.schedule_to(2, t, "first");
        sq.schedule_to(0, t, "second");
        sq.schedule_to(1, t, "third");
        assert_eq!(sq.pop(), Some((t, "first")));
        assert_eq!(sq.pop(), Some((t, "second")));
        assert_eq!(sq.pop(), Some((t, "third")));
        assert!(sq.pop().is_none());
    }

    #[test]
    fn stash_precedes_later_wheel_entries_at_same_instant() {
        let mut sq: ShardedQueue<u8> = ShardedQueue::new(2, Time::ZERO);
        let t = Time::from_us(3);
        sq.schedule_to(0, t, 1);
        sq.schedule_to(1, t, 2);
        // Tie resolution stashes both heads; schedule two more at the
        // same instant — they must come out after the stashed pair.
        assert_eq!(sq.pop(), Some((t, 1)));
        sq.schedule_to(1, t, 3);
        sq.schedule_to(0, t, 4);
        assert_eq!(sq.pop(), Some((t, 2)));
        assert_eq!(sq.pop(), Some((t, 3)));
        assert_eq!(sq.pop(), Some((t, 4)));
    }

    #[test]
    fn handoffs_count_cross_shard_schedules_only() {
        let mut sq: ShardedQueue<u8> = ShardedQueue::new(2, Time::ZERO);
        sq.schedule_to(0, Time::from_us(1), 0);
        sq.pop(); // current = shard 0
        sq.schedule_to(0, Time::from_us(2), 1); // same shard: not a handoff
        sq.schedule_to(1, Time::from_us(3), 2); // cross-shard: handoff
        assert_eq!(sq.shard_stats()[0].handoffs, 0);
        assert_eq!(sq.shard_stats()[1].handoffs, 1);
    }

    #[test]
    fn stalls_flag_shards_beyond_the_horizon() {
        let la = Time::from_us(10);
        let mut sq: ShardedQueue<u8> = ShardedQueue::new(2, la);
        sq.schedule_to(0, Time::from_us(1), 0);
        sq.schedule_to(1, Time::from_us(20), 1); // ≥ 1µs + 10µs horizon
        sq.pop();
        assert_eq!(sq.shard_stats()[1].stalls, 1);
        // Within the horizon: no stall.
        let mut sq: ShardedQueue<u8> = ShardedQueue::new(2, la);
        sq.schedule_to(0, Time::from_us(1), 0);
        sq.schedule_to(1, Time::from_us(5), 1);
        sq.pop();
        assert_eq!(sq.shard_stats()[1].stalls, 0);
    }

    #[test]
    fn drop_seq_tiebreak_defect_inverts_tie_order() {
        let t = Time::from_us(7);
        let mut sq = ShardedQueue::with_defect(2, Time::ZERO, MergeDefect::DropSeqTiebreak);
        sq.schedule_to(0, t, "scheduled first");
        sq.schedule_to(1, t, "scheduled second");
        // The seam picks the highest tied shard index, not the earliest
        // global stamp.
        assert_eq!(sq.pop(), Some((t, "scheduled second")));
        assert_eq!(sq.pop(), Some((t, "scheduled first")));
    }

    #[test]
    fn over_advance_defect_is_caught_by_the_merge_clamp() {
        let la = Time::from_us(10);
        let mut sq = ShardedQueue::with_defect(2, la, MergeDefect::OverAdvanceLookahead);
        sq.schedule_to(1, Time::from_us(1), "true head");
        sq.schedule_to(0, Time::from_us(5), "inside horizon");
        // The seam pops shard 0's 5µs event first (lowest index inside
        // the 1µs+10µs horizon), then shard 1's 1µs event arrives in
        // the past and gets clamped — visibly.
        assert_eq!(sq.pop(), Some((Time::from_us(5), "inside horizon")));
        assert_eq!(sq.pop(), Some((Time::from_us(5), "true head")));
        assert!(sq.clamp_count() > 0, "the violation must be observable");
        assert!(sq.shard_stats()[1].clamps > 0);
    }

    #[test]
    fn conservative_horizon_is_min_head_plus_lookahead() {
        let la = Time::from_us(10);
        assert_eq!(conservative_horizon(&[], la), None);
        assert_eq!(conservative_horizon(&[None, None], la), None);
        assert_eq!(
            conservative_horizon(&[Some(Time::from_us(5)), None, Some(Time::from_us(3))], la),
            Some(Time::from_us(13))
        );
    }

    #[test]
    fn scheduler_trait_delegates_to_both_queues() {
        fn drive<Q: Scheduler<u8>>(q: &mut Q) -> Vec<(Time, u8)> {
            q.schedule(Time::from_us(2), 2);
            q.schedule_in(Time::from_us(1), 1);
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push(e);
            }
            out
        }
        let mut w: WheelQueue<u8> = WheelQueue::new();
        let mut h: crate::HeapQueue<u8> = crate::HeapQueue::new();
        assert_eq!(drive(&mut w), drive(&mut h));
        assert_eq!(Scheduler::<u8>::clamp_count(&w), 0);
        assert_eq!(Scheduler::<u8>::scheduled_count(&h), 2);
    }
}
