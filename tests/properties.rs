//! Property-based tests over the whole pipeline: random topologies and
//! workloads must uphold the simulator's global invariants.

use hermes_core::HermesParams;
use hermes_lb::CongaCfg;
use hermes_net::{LinkCfg, Topology};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_testkit::chaos;
use hermes_workload::{FlowGen, FlowSizeDist};
use proptest::prelude::*;

fn small_topo(n_leaves: usize, n_spines: usize, hosts: usize) -> Topology {
    Topology::leaf_spine(
        n_leaves,
        n_spines,
        hosts,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    )
}

fn scheme_for(idx: u8, topo: &Topology) -> Scheme {
    match idx % 5 {
        0 => Scheme::Ecmp,
        1 => Scheme::presto(),
        2 => Scheme::Conga(CongaCfg::default()),
        3 => Scheme::LetFlow {
            flowlet_timeout: Time::from_us(150),
        },
        _ => Scheme::Hermes(HermesParams::from_topology(topo)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On a healthy fabric, every flow completes, every completion is
    /// causal (finish ≥ start + line-rate lower bound), and no edge
    /// scheme ever stamps a dead path.
    #[test]
    fn healthy_fabric_invariants(
        n_leaves in 2usize..5,
        n_spines in 1usize..5,
        hosts in 2usize..5,
        scheme_idx in 0u8..5,
        load in 0.1f64..0.7,
        seed in 0u64..1000,
    ) {
        let topo = small_topo(n_leaves, n_spines, hosts);
        let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), load, None, SimRng::new(seed));
        let scheme = scheme_for(scheme_idx, &topo);
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(seed));
        sim.add_flows(gen.schedule(30));
        sim.run_to_completion(Time::from_secs(60));
        prop_assert_eq!(sim.fabric().stats.path_fallbacks, 0);
        let rate = topo.host_link.rate_bps;
        for r in sim.records() {
            let finish = r.finish.expect("healthy fabric must complete all flows");
            prop_assert!(finish > r.start);
            // FCT can't beat serialization of the whole flow at the edge.
            let lower = Time::tx_time(r.size, rate);
            prop_assert!(
                finish - r.start >= lower,
                "fct {} below line-rate bound {} for {} bytes",
                finish - r.start, lower, r.size
            );
        }
        // Every payload byte that was delivered belongs to a known flow:
        // delivered packet count is positive and bounded by events.
        prop_assert!(sim.fabric().stats.delivered > 0);
        prop_assert!(sim.stats.events >= sim.fabric().stats.delivered);
    }

    /// Determinism: identical (config, seed) ⇒ identical event counts
    /// and identical FCT vectors, for every scheme.
    #[test]
    fn replay_determinism(scheme_idx in 0u8..5, seed in 0u64..100) {
        let topo = small_topo(3, 3, 3);
        let go = || {
            let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.5, None, SimRng::new(seed));
            let mut sim = Simulation::new(
                SimConfig::new(topo.clone(), scheme_for(scheme_idx, &topo)).with_seed(seed),
            );
            sim.add_flows(gen.schedule(25));
            sim.run_to_completion(Time::from_secs(30));
            (
                sim.stats.events,
                sim.records().iter().map(|r| r.finish).collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(go(), go());
    }

    /// Cutting links (while staying connected) never wedges the fabric:
    /// flows still complete over the remaining paths.
    #[test]
    fn link_cuts_keep_fabric_usable(
        cut_mask in 0u8..7, // never cuts every spine
        scheme_idx in 0u8..5,
        seed in 0u64..100,
    ) {
        let mut topo = small_topo(2, 3, 3);
        for s in 0..3u16 {
            if cut_mask & (1 << s) != 0 {
                topo.cut_link(hermes_net::LeafId(0), hermes_net::SpineId(s));
            }
        }
        let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.3, None, SimRng::new(seed));
        let mut sim = Simulation::new(
            SimConfig::new(topo.clone(), scheme_for(scheme_idx, &topo)).with_seed(seed),
        );
        sim.add_flows(gen.schedule(20));
        sim.run_to_completion(Time::from_secs(60));
        let unfinished = sim.records().iter().filter(|r| r.finish.is_none()).count();
        prop_assert_eq!(unfinished, 0, "cut_mask {:03b} wedged the fabric", cut_mask);
    }

    /// Every chaos-sampled fault plan is valid, deterministic in its
    /// seed, and survives the corpus TOML round-trip exactly — the
    /// serialization the counterexample corpus depends on loses
    /// nothing from the full fault grammar.
    #[test]
    fn sampled_chaos_plans_validate_and_round_trip(seed in 0u64..100_000) {
        let gen_cfg = chaos::GenCfg::testbed();
        let plan = chaos::sample_plan(seed, &gen_cfg);
        prop_assert_eq!(plan.validate(), Ok(()));
        prop_assert_eq!(&chaos::sample_plan(seed, &gen_cfg), &plan);
        let entry = chaos::CorpusEntry {
            description: format!("round-trip probe for seed {seed} (\"quoted\\path\")"),
            seed,
            slo: "recovery".to_string(),
            lb: "hermes".to_string(),
            plan: plan.clone(),
        };
        let text = chaos::plan_to_toml(&entry);
        let back = chaos::entry_from_toml(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&back, &entry, "TOML round-trip must be lossless");
        // Serialization is canonical: re-serializing the reparsed
        // entry reproduces the bytes.
        prop_assert_eq!(chaos::plan_to_toml(&back), text);
    }
}
