//! Tier-1 thread-count invariance: the sharded engine must replay the
//! exact committed event order at any worker count.
//!
//! Every tier-1 scenario pins its event-trace digests in
//! `tests/scenarios/digests.toml`, blessed from single-queue runs.
//! This suite re-runs a trimmed matrix — every scenario regime × its
//! first LB × its first seed × sim threads {1, 2, 4} — through
//! `Simulation::run_parallel` and demands each digest equal the
//! committed golden byte for byte. Nothing is ever re-blessed here: a
//! mismatch at any thread count is a merge-order bug in the sharded
//! engine, never a reason to update a golden. The full 63-cell ×
//! thread-count matrix runs via `cargo run -p xtask -- parallel`.
//!
//! Triage on a digest failure: the per-shard counters narrow it down —
//! compare `shards` between the failing and a passing thread count;
//! the first shard whose event count diverges owns the leaf (or hub,
//! shard 0) where the merge first mis-ordered a tie. See DESIGN.md §17
//! and tests/README.md.

use std::path::{Path, PathBuf};

use hermes_bench::{build_sim, run_point_detailed, run_point_detailed_parallel};
use hermes_runtime::fingerprint_parallel;
use hermes_testkit::{load_dir, load_goldens};

fn scenario_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios")
}

#[test]
fn sharded_engine_reproduces_committed_goldens_at_every_thread_count() {
    let specs = load_dir(&scenario_dir()).expect("scenarios load");
    let goldens = load_goldens(&scenario_dir()).expect("goldens load");
    assert!(!goldens.is_empty(), "tier-1 goldens must be committed");
    let mut cells = 0;
    for spec in &specs {
        assert!(
            spec.pin_digests,
            "{}: tier-1 scenarios pin digests",
            spec.name
        );
        let seed = spec.seeds[0];
        let key = spec.digest_key(0, seed);
        let golden = *goldens
            .get(&key)
            .unwrap_or_else(|| panic!("no committed golden for {key}"));
        let cfg = spec.materialize(0, seed).expect("cell materializes");
        for sim_threads in [1usize, 2, 4] {
            let r = run_point_detailed_parallel(&cfg, spec.goodput_interval, sim_threads);
            assert_eq!(
                r.digest, golden,
                "{key} @ {sim_threads} thread(s): digest diverged from the committed golden"
            );
            assert_eq!(
                r.queue_clamps, 0,
                "{key} @ {sim_threads} thread(s): merge clamped a past-time schedule"
            );
            assert_eq!(r.sim_threads, sim_threads as u64);
            if sim_threads >= 2 {
                assert!(
                    !r.shards.is_empty(),
                    "{key}: sharded run must record per-shard counters"
                );
                assert!(
                    r.shards.iter().map(|s| s.events).sum::<u64>() > 0,
                    "{key}: shards dispatched nothing"
                );
            }
            cells += 1;
        }
    }
    // The regime floor from tests/conformance.rs, times the 3-count
    // thread matrix.
    assert!(cells >= 18, "expected >= 6 regimes x 3 thread counts");
}

#[test]
fn sharded_run_matches_the_single_queue_run_in_every_observable() {
    // Beyond the digest: events, FCTs, conservation and goodput must
    // agree too — the digest covers dispatch order, these cover what
    // the handlers computed.
    let specs = load_dir(&scenario_dir()).expect("scenarios load");
    let spec = specs
        .iter()
        .find(|s| s.name == "incast")
        .expect("incast regime present");
    let cfg = spec.materialize(0, spec.seeds[0]).expect("materializes");
    let single = run_point_detailed(&cfg, spec.goodput_interval);
    for sim_threads in [2usize, 4] {
        let sharded = run_point_detailed_parallel(&cfg, spec.goodput_interval, sim_threads);
        assert_eq!(single.digest, sharded.digest);
        assert_eq!(single.events, sharded.events);
        assert_eq!(single.conservation, sharded.conservation);
        assert_eq!(single.fct.avg, sharded.fct.avg);
        assert_eq!(single.fct.p99, sharded.fct.p99);
        assert_eq!(single.goodput, sharded.goodput);
    }
}

#[test]
fn parallel_fingerprints_are_interchangeable_with_serial_ones() {
    // The runtime's own self-check surface: fingerprint_parallel at
    // different worker counts must produce fingerprints that pass
    // assert_matches against each other (thread count excluded from
    // the contract, per-shard counters included).
    let specs = load_dir(&scenario_dir()).expect("scenarios load");
    let spec = specs
        .iter()
        .find(|s| s.name == "symmetric")
        .expect("symmetric regime present");
    let cfg = spec.materialize(0, spec.seeds[0]).expect("materializes");
    let (sim2, horizon2) = build_sim(&cfg, None);
    let (sim4, horizon4) = build_sim(&cfg, None);
    assert_eq!(horizon2, horizon4);
    let a = fingerprint_parallel(sim2, 2, horizon2);
    let b = fingerprint_parallel(sim4, 4, horizon4);
    a.assert_matches(&b);
    assert_eq!(a.threads, 2);
    assert_eq!(b.threads, 4);
    assert!(!a.shards.is_empty());
}
