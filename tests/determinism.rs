//! Determinism and packet-conservation regressions.
//!
//! The simulator's contract (DESIGN.md, "Determinism contract & audit
//! layer"): a (config, seed) pair fully determines every packet of a
//! run, and every injected packet is delivered, dropped, or still in
//! flight — never silently lost. These tests run real scenarios twice
//! from the same seed and compare full event-trace digests and FCT
//! vectors, then check the fabric's conservation accounting for every
//! load-balancing scheme.
//!
//! Run with `--features audit` to additionally engage the exact
//! per-packet ledger inside the fabric.

use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg, FlowBenderCfg};
use hermes_net::{FaultPlan, LeafId, SpineFailure, SpineId, Topology};
use hermes_runtime::{selfcheck, Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_workload::{FlowGen, FlowSizeDist};

fn all_schemes(topo: &Topology) -> Vec<(&'static str, Scheme)> {
    vec![
        ("ecmp", Scheme::Ecmp),
        ("drb", Scheme::Drb),
        ("presto", Scheme::presto()),
        ("flowbender", Scheme::FlowBender(FlowBenderCfg::default())),
        ("clove", Scheme::Clove(CloveCfg::default())),
        (
            "letflow",
            Scheme::LetFlow {
                flowlet_timeout: Time::from_us(150),
            },
        ),
        ("drill", Scheme::Drill { samples: 2 }),
        ("conga", Scheme::Conga(CongaCfg::default())),
        ("hermes", Scheme::Hermes(HermesParams::from_topology(topo))),
    ]
}

/// The quickstart example's scenario: web-search flows at 60% load on
/// the paper's 8×8 leaf-spine fabric (fewer flows, same parameters).
fn quickstart_sim(scheme: Scheme) -> Simulation {
    let topo = Topology::sim_baseline();
    let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.6, None, SimRng::new(7));
    let mut sim = Simulation::new(SimConfig::new(topo, scheme).with_seed(1));
    sim.add_flows(gen.schedule(80));
    sim
}

/// The failover example's scenario: a full blackhole at spine 5 for
/// rack0 → rack7 traffic, Hermes routing around it.
fn failover_sim() -> Simulation {
    let topo = Topology::sim_baseline();
    let scheme = Scheme::Hermes(HermesParams::from_topology(&topo));
    let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(3));
    sim.set_spine_failure(
        SpineId(5),
        SpineFailure::blackhole(LeafId(0), LeafId(7), 1.0),
    );
    let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(9));
    let mut flows = Vec::new();
    while flows.len() < 40 {
        let f = gen.next_flow();
        if topo.host_leaf(f.src) == LeafId(0) && topo.host_leaf(f.dst) == LeafId(7) {
            flows.push(f);
        }
    }
    for (i, f) in flows.iter_mut().enumerate() {
        f.start = Time::from_us(400 * i as u64);
    }
    sim.add_flows(flows);
    sim
}

#[test]
fn quickstart_fct_vectors_identical_across_same_seed_runs() {
    for scheme in [
        Scheme::Ecmp,
        Scheme::Hermes(HermesParams::from_topology(&Topology::sim_baseline())),
    ] {
        let fp =
            selfcheck::assert_deterministic(|| quickstart_sim(scheme.clone()), Time::from_secs(10));
        assert_eq!(fp.fcts.len(), 80);
        assert!(fp.events > 0);
    }
}

#[test]
fn failover_scenario_is_deterministic_and_conserves_packets() {
    let fp = selfcheck::assert_deterministic(failover_sim, Time::from_secs(5));
    assert!(
        fp.conservation.dropped() > 0,
        "the blackhole must destroy packets: {}",
        fp.conservation
    );
}

/// A transient chaos scenario: a link flapping periodically while a
/// blackhole opens mid-run and clears again, all driven by a
/// [`FaultPlan`] replayed through the event queue.
fn chaos_sim() -> Simulation {
    let topo = Topology::sim_baseline();
    let scheme = Scheme::Hermes(HermesParams::from_topology(&topo));
    let plan = FaultPlan::new()
        .blackhole_window(
            SpineId(5),
            LeafId(0),
            LeafId(7),
            1.0,
            Time::from_ms(4),
            Time::from_ms(12),
        )
        .link_flap(
            LeafId(0),
            SpineId(2),
            Time::from_ms(2),
            Time::from_ms(1),
            Time::from_ms(3),
            Time::from_ms(14),
        );
    let mut sim = Simulation::new(
        SimConfig::new(topo.clone(), scheme)
            .with_seed(3)
            .with_fault_plan(plan),
    );
    let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(9));
    let mut flows = Vec::new();
    while flows.len() < 40 {
        let f = gen.next_flow();
        if topo.host_leaf(f.src) == LeafId(0) && topo.host_leaf(f.dst) == LeafId(7) {
            flows.push(f);
        }
    }
    for (i, f) in flows.iter_mut().enumerate() {
        f.start = Time::from_us(400 * i as u64);
    }
    sim.add_flows(flows);
    sim
}

#[test]
fn chaos_schedule_is_deterministic_and_conserves_packets() {
    let fp = selfcheck::assert_deterministic(chaos_sim, Time::from_secs(5));
    assert!(
        fp.conservation.dropped() > 0,
        "the flapping link and the transient blackhole must destroy packets: {}",
        fp.conservation
    );
    assert!(
        fp.fcts.iter().all(|&(_, f)| f.is_some()),
        "every flow must finish once the faults clear"
    );
}

/// A gray-failure scenario on the rack0 → rack7 workload: the fault
/// plan is supplied by the caller so the same harness exercises each
/// gray-failure model.
fn gray_failure_sim(plan: FaultPlan) -> Simulation {
    let topo = Topology::sim_baseline();
    let scheme = Scheme::Hermes(HermesParams::from_topology(&topo));
    let mut sim = Simulation::new(
        SimConfig::new(topo.clone(), scheme)
            .with_seed(3)
            .with_fault_plan(plan),
    );
    let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(9));
    let mut flows = Vec::new();
    while flows.len() < 40 {
        let f = gen.next_flow();
        if topo.host_leaf(f.src) == LeafId(0) && topo.host_leaf(f.dst) == LeafId(7) {
            flows.push(f);
        }
    }
    for (i, f) in flows.iter_mut().enumerate() {
        f.start = Time::from_us(400 * i as u64);
    }
    sim.add_flows(flows);
    sim
}

/// Per-victim-flow partial blackhole (the gray failure where a switch
/// silently eats *some* flows): same seed ⇒ same digest, packets are
/// actually destroyed, and every flow finishes once the window clears.
#[test]
fn flow_blackhole_plan_is_deterministic_and_recovers() {
    let plan = FaultPlan::new().flow_blackhole_window(
        SpineId(5),
        0.6,
        Time::from_ms(3),
        Time::from_ms(12),
    );
    let fp = selfcheck::assert_deterministic(|| gray_failure_sim(plan.clone()), Time::from_secs(5));
    assert!(
        fp.conservation.dropped() > 0,
        "the partial blackhole must destroy victim-flow packets: {}",
        fp.conservation
    );
    assert!(
        fp.fcts.iter().all(|&(_, f)| f.is_some()),
        "every flow must finish once the blackhole clears"
    );
}

/// ECN mute (sensing deprivation: the switch forwards but stops
/// CE-marking): the fault itself never destroys a packet — any loss
/// shows up as buffer-full congestion drops from the un-signalled
/// queue buildup — the run stays digest-identical across same-seed
/// replays, and all flows complete.
#[test]
fn ecn_mute_plan_is_deterministic_and_lossless() {
    let plan = FaultPlan::new().ecn_mute_window(SpineId(2), Time::from_ms(2), Time::from_ms(14));
    let fp = selfcheck::assert_deterministic(|| gray_failure_sim(plan.clone()), Time::from_secs(5));
    assert_eq!(
        fp.conservation.drops_failure, 0,
        "ECN mute must not destroy packets itself: {}",
        fp.conservation
    );
    assert!(
        fp.fcts.iter().all(|&(_, f)| f.is_some()),
        "every flow must finish under ECN mute"
    );
    assert!(fp.events > 0);
}

#[test]
fn conservation_balances_for_every_scheme() {
    let topo = Topology::testbed();
    for (name, scheme) in all_schemes(&topo) {
        let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(7));
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(11));
        sim.add_flows(gen.schedule(40));
        sim.run_to_completion(Time::from_secs(30));

        // Mid-run (packets may still be in queues): the census and the
        // counters must already agree.
        let mid = sim.conservation();
        assert!(mid.balanced(), "{name}: imbalance at completion: {mid}");
        assert!(mid.injected > 0, "{name}: nothing injected");
        assert_eq!(mid.delivered, sim.fabric().stats.delivered, "{name}");

        // Drain every one-shot event (lazy-cancelled timers, trailing
        // ACKs). Hermes reschedules its probe tick forever, so only the
        // other schemes reach a fully quiescent fabric with zero
        // packets in flight: injected = delivered + dropped, exactly.
        if name != "hermes" {
            sim.run_until(Time::from_secs(120));
            let end = sim.conservation();
            assert!(end.balanced(), "{name}: imbalance after drain: {end}");
            assert_eq!(
                end.in_flight, 0,
                "{name}: packets stuck in the fabric: {end}"
            );
            assert_eq!(
                end.injected,
                end.delivered + end.dropped(),
                "{name}: strict conservation failed: {end}"
            );
        }

        // With the exact ledger compiled in, its outstanding set must
        // match the physical census packet for packet.
        #[cfg(feature = "audit")]
        assert_eq!(
            sim.fabric().ledger_outstanding(),
            sim.conservation().in_flight,
            "{name}: ledger disagrees with the port census"
        );
    }
}

#[test]
fn staged_workload_drivers_are_deterministic_per_kind() {
    // The new staged-dependency workloads release flows from completion
    // callbacks *inside* the event loop, so their arrival times are
    // themselves simulation outputs. Same seed must still reproduce the
    // whole run bit-for-bit: full event-trace digest, FCT vector, and
    // record timeline, for each driver kind.
    use hermes_bench::{run_point_detailed, PointCfg};
    use hermes_workload::{FlowSizeDist, IncastCfg, MixCfg, RingCfg, WorkloadKind};

    let kinds = [
        (
            "ring_allreduce",
            WorkloadKind::RingAllreduce(RingCfg {
                ranks: 6,
                steps: 2,
                chunk_bytes: 48_000,
            }),
        ),
        (
            "incast",
            WorkloadKind::Incast(IncastCfg {
                fanout: 5,
                reply_bytes: 24_000,
                bursts: 3,
            }),
        ),
        (
            "elephant_mice",
            WorkloadKind::ElephantMice(MixCfg {
                mice_bytes: 20_000,
                elephant_bytes: 500_000,
                elephant_frac: 0.1,
            }),
        ),
    ];
    for (name, kind) in kinds {
        let cfg = PointCfg::new(
            Topology::testbed(),
            Scheme::Hermes(HermesParams::from_topology(&Topology::testbed())),
            FlowSizeDist::web_search(),
            0.3,
        )
        .workload(kind)
        .flows(30)
        .seed(23)
        .drain(Time::from_ms(1200));
        let a = run_point_detailed(&cfg, Time::from_ms(1));
        let b = run_point_detailed(&cfg, Time::from_ms(1));
        assert_eq!(a.digest, b.digest, "{name}: same-seed digests differ");
        assert_eq!(a.events, b.events, "{name}: event counts differ");
        assert_eq!(
            a.records.len(),
            b.records.len(),
            "{name}: record counts differ"
        );
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(
                (ra.id, ra.start, ra.finish, ra.size),
                (rb.id, rb.start, rb.finish, rb.size),
                "{name}: record timelines differ"
            );
        }
        assert!(
            a.records.iter().all(|r| r.finish.is_some()),
            "{name}: staged workload did not drain within the budget"
        );
        assert!(a.conservation.balanced(), "{name}: conservation imbalance");
    }
}
