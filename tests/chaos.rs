//! Chaos campaign engine: corpus replay, campaign determinism, and
//! the SLO/shrinker self-test (DESIGN.md §14).
//!
//! Tier-1 cut of `cargo run -p xtask -- chaos`: the committed
//! counterexample corpus must replay green under the default SLOs, a
//! campaign must be byte-deterministic in its seed range, and every
//! planted self-test fixture must trip its checker. The `mine_*` test
//! at the bottom is `#[ignore]`d — it is the documented harness that
//! produced the overlapping-fault corpus entry, kept runnable so the
//! entry's provenance can be re-derived.

use std::path::Path;

use hermes_net::{FaultPlan, SpineId};
use hermes_sim::Time;
use hermes_testkit::chaos::{
    self, chaos_self_test_passed, run_chaos_self_test, slo, CampaignCfg, SloCfg,
};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/chaos/corpus"))
}

/// Every committed counterexample replays green at the default SLOs:
/// the degradations those plans once exposed stay within contract.
#[test]
fn corpus_replays_green_at_default_slos() {
    let replay = chaos::replay_corpus(corpus_dir(), &SloCfg::default(), true)
        .expect("corpus must load and run");
    assert!(
        replay.files.len() >= 3,
        "corpus thinned below the committed minimum: {:?}",
        replay.files
    );
    assert!(
        replay.violations.is_empty(),
        "corpus regressed: {:?}",
        replay
            .violations
            .iter()
            .map(|v| format!("{} {}: {}", v.class.as_str(), v.cell, v.detail))
            .collect::<Vec<_>>()
    );
}

/// At least one corpus entry exercises *concurrent* faults — two
/// fault windows overlapping in time — per the corpus charter.
#[test]
fn corpus_keeps_an_overlapping_fault_entry() {
    let entries = chaos::load_corpus(corpus_dir()).expect("corpus must load");
    let has_overlap = entries.iter().any(|(_, e)| {
        // Two fault windows are concurrent iff a second onset-like
        // event fires while an earlier window is still open (its
        // clear-like event comes later).
        let mut open = 0usize;
        let mut max_open = 0usize;
        let mut evs: Vec<_> = e.plan.events().iter().collect();
        evs.sort_by_key(|ev| ev.at);
        for ev in evs {
            use hermes_net::FaultAction as A;
            match ev.action {
                A::SetSpineFailure { .. }
                | A::FlowBlackhole { .. }
                | A::EcnMute { .. }
                | A::LinkDown { .. }
                | A::SetLinkRate { .. }
                | A::SpineDown { .. } => {
                    open += 1;
                    max_open = max_open.max(open);
                }
                A::ClearSpineFailure { .. }
                | A::EcnUnmute { .. }
                | A::LinkUp { .. }
                | A::RestoreLinkRate { .. }
                | A::SpineUp { .. } => open = open.saturating_sub(1),
            }
        }
        max_open >= 2 && e.plan.len() >= 4
    });
    assert!(
        has_overlap,
        "corpus must keep at least one overlapping-fault counterexample"
    );
}

/// Same seeds + same config ⇒ the same campaign report, byte for byte
/// (the acceptance bar for `xtask chaos --seeds 32 --quick`, kept
/// affordable here with 2 seeds).
#[test]
fn quick_campaign_is_byte_deterministic_and_green() {
    let cfg = CampaignCfg {
        seeds: 2,
        quick: true,
        ..CampaignCfg::default()
    };
    let a = chaos::run_campaign(&cfg);
    let b = chaos::run_campaign(&cfg);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "campaign reports must be identical"
    );
    assert_eq!(a.digest(), b.digest());
    assert_eq!(
        a.total_violations(),
        0,
        "main must be violation-free at default SLOs: {:?}",
        a.outcomes
            .iter()
            .flat_map(|o| &o.violations)
            .map(|v| format!("{} {}: {}", v.class.as_str(), v.cell, v.detail))
            .collect::<Vec<_>>()
    );
}

/// Every planted SLO defect trips its checker and the shrinker finds
/// the known-minimal plan.
#[test]
fn chaos_self_test_passes() {
    let cases = run_chaos_self_test();
    assert!(
        chaos_self_test_passed(&cases),
        "failed fixtures: {:?}",
        cases
            .iter()
            .filter(|c| !c.ok)
            .map(|c| format!("{}: {}", c.name, c.detail))
            .collect::<Vec<_>>()
    );
}

/// The harness that mined `tests/chaos/corpus/overlap-dual-outage.toml`.
///
/// A dual concurrent spine outage halves fabric capacity; either
/// outage alone removes only a quarter and the schemes absorb it. The
/// harness probes recovery-SLO strictness until it finds a config
/// that the *combination* trips but each single outage passes, then
/// shrinks under that predicate — so the minimal counterexample must
/// keep both overlapping windows. Run with:
/// `cargo test --release --test chaos mine -- --ignored --nocapture`
#[test]
#[ignore = "corpus mining harness, run manually"]
fn mine_overlapping_counterexample() {
    let seed = 7;
    let plans_for = |end0_ms: u64| {
        let full = FaultPlan::new()
            .spine_outage(SpineId(0), Time::from_ms(8), Time::from_ms(end0_ms))
            .spine_outage(SpineId(1), Time::from_ms(10), Time::from_ms(130));
        let singles = [
            FaultPlan::new().spine_outage(SpineId(0), Time::from_ms(8), Time::from_ms(end0_ms)),
            FaultPlan::new().spine_outage(SpineId(1), Time::from_ms(10), Time::from_ms(130)),
        ];
        (full, singles)
    };
    // (trips strict recovery, clean at default SLOs): the second gate
    // keeps every shrink candidate corpus-eligible — dropping a
    // SpineUp would make the outage permanent, strand ECMP flows, and
    // fail the default drain check on replay.
    let judge = |plan: &FaultPlan, strict: &SloCfg| -> (bool, bool) {
        let runs = chaos::run_cells(plan, seed, true);
        let trips = slo::check_cell("mine", &runs, plan.end_time(), strict)
            .iter()
            .any(|v| v.class == slo::SloClass::Recovery);
        let clean = slo::check_cell("mine", &runs, plan.end_time(), &SloCfg::default()).is_empty();
        (trips, clean)
    };
    let mut picked: Option<(SloCfg, FaultPlan)> = None;
    'search: for end0_ms in [40, 60, 80, 100] {
        let (full, singles) = plans_for(end0_ms);
        for frac in [0.99, 0.995, 0.999] {
            for slack_ms in [0, 8, 16] {
                let cfg = SloCfg {
                    recovery_frac: frac,
                    recovery_slack: Time::from_ms(slack_ms),
                    ..SloCfg::default()
                };
                let (f, f_clean) = judge(&full, &cfg);
                let s: Vec<bool> = singles.iter().map(|p| judge(p, &cfg).0).collect();
                println!(
                    "end0={end0_ms}ms frac={frac} slack={slack_ms}ms: full={f} \
                     (default-clean={f_clean}) singles={s:?}"
                );
                if f && f_clean && s.iter().all(|&t| !t) {
                    picked = Some((cfg, full));
                    break 'search;
                }
            }
        }
    }
    let (cfg, full) = picked.expect("no strictness separates the dual outage from the singles");
    let out = chaos::shrink_plan(
        &full,
        |p| {
            let (t, c) = judge(p, &cfg);
            t && c
        },
        64,
    );
    println!(
        "shrunk {} -> {} events in {} evals",
        out.from_events,
        out.plan.len(),
        out.evals
    );
    let runs = chaos::run_cells(&out.plan, seed, true);
    let lb = slo::check_cell("mine", &runs, out.plan.end_time(), &cfg)
        .iter()
        .find(|v| v.class == slo::SloClass::Recovery)
        .and_then(|v| v.cell.rsplit_once('/').map(|(_, lb)| lb.to_string()))
        .unwrap_or_else(|| "cross".to_string());
    let entry = chaos::CorpusEntry {
        description: format!(
            "dual concurrent spine outage (spines 0+1) trips recovery at frac {:?} \
             slack {} while either outage alone passes; mined by tests/chaos.rs \
             mine_overlapping_counterexample",
            cfg.recovery_frac, cfg.recovery_slack
        ),
        seed,
        slo: "recovery".to_string(),
        lb,
        plan: out.plan,
    };
    println!("--- corpus entry ---\n{}", chaos::plan_to_toml(&entry));
}

/// The staged-dependency workloads (ring-allreduce, incast) release
/// flows from completion callbacks *inside* the event loop. Running
/// them must leave the chaos engine untouched: a campaign fingerprints
/// identically before and after, and the committed corpus still
/// replays green — no hidden global state (RNG, id counters, caches)
/// leaks between the workload drivers and the fault harness.
#[test]
fn staged_workloads_do_not_perturb_chaos_digests() {
    use hermes_bench::{run_point_detailed, PointCfg};
    use hermes_net::Topology;
    use hermes_runtime::Scheme;
    use hermes_workload::{FlowSizeDist, IncastCfg, RingCfg, WorkloadKind};

    let cfg = CampaignCfg {
        seeds: 2,
        quick: true,
        ..CampaignCfg::default()
    };
    let before = chaos::run_campaign(&cfg);

    // Interleave both driver kinds between the two campaign runs.
    for kind in [
        WorkloadKind::RingAllreduce(RingCfg {
            ranks: 4,
            steps: 2,
            chunk_bytes: 32_000,
        }),
        WorkloadKind::Incast(IncastCfg {
            fanout: 4,
            reply_bytes: 16_000,
            bursts: 2,
        }),
    ] {
        let point = PointCfg::new(
            Topology::testbed(),
            Scheme::Ecmp,
            FlowSizeDist::web_search(),
            0.3,
        )
        .workload(kind)
        .seed(5)
        .drain(Time::from_ms(800));
        let det = run_point_detailed(&point, Time::from_ms(1));
        assert!(det.conservation.balanced());
    }

    let replay = chaos::replay_corpus(corpus_dir(), &SloCfg::default(), true)
        .expect("corpus must load and run");
    assert!(
        replay.violations.is_empty(),
        "corpus regressed after staged workloads ran"
    );
    let after = chaos::run_campaign(&cfg);
    assert_eq!(
        before.digest(),
        after.digest(),
        "staged workloads perturbed the campaign fingerprint"
    );
    assert_eq!(before.to_json(), after.to_json());
}
