//! Cross-crate scenario tests: the paper's qualitative claims, each
//! checked end-to-end on small configurations.

use hermes_core::HermesParams;
use hermes_lb::CongaCfg;
use hermes_net::{LeafId, LinkCfg, SpineFailure, SpineId, Topology};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_workload::{summarize, FlowGen, FlowSizeDist};

/// Run a workload and return (avg FCT seconds, unfinished count).
fn run(
    topo: &Topology,
    scheme: Scheme,
    load: f64,
    n: usize,
    capacity: Option<u64>,
    failure: Option<(SpineId, SpineFailure)>,
    horizon: Time,
) -> (f64, usize) {
    let mut gen = FlowGen::new(
        topo,
        FlowSizeDist::web_search(),
        load,
        capacity,
        SimRng::new(42),
    );
    let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(7));
    if let Some((s, f)) = failure {
        sim.set_spine_failure(s, f);
    }
    sim.add_flows(gen.schedule(n));
    sim.run_to_completion(horizon);
    let s = summarize(sim.records(), horizon);
    (s.avg, s.unfinished)
}

#[test]
fn symmetric_fabric_all_schemes_finish_everything() {
    let topo = Topology::testbed();
    for scheme in [
        Scheme::Ecmp,
        Scheme::presto(),
        Scheme::Conga(CongaCfg::default()),
        Scheme::Hermes(HermesParams::paper_testbed(&topo)),
    ] {
        let (_, unfinished) = run(&topo, scheme, 0.5, 80, None, None, Time::from_secs(30));
        assert_eq!(unfinished, 0);
    }
}

#[test]
fn random_drop_failure_hermes_beats_ecmp() {
    // 2% silent drops at one spine: Hermes detects and avoids; ECMP
    // keeps 1/4 of flows pinned through it.
    let topo = Topology::leaf_spine(
        4,
        4,
        4,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    );
    let failure = Some((SpineId(1), SpineFailure::random_drops(0.02)));
    let horizon = Time::from_secs(20);
    let (ecmp, _) = run(&topo, Scheme::Ecmp, 0.4, 150, None, failure, horizon);
    let (hermes, hermes_unfinished) = run(
        &topo,
        Scheme::Hermes(HermesParams::from_topology(&topo)),
        0.4,
        150,
        None,
        failure,
        horizon,
    );
    assert_eq!(hermes_unfinished, 0);
    assert!(
        hermes < ecmp * 0.75,
        "hermes {hermes:.6}s must clearly beat ecmp {ecmp:.6}s under random drops"
    );
}

#[test]
fn blackhole_hermes_finishes_everything_ecmp_does_not() {
    let topo = Topology::leaf_spine(
        4,
        4,
        4,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    );
    // Every pair on every rack combination through spine 0 is eaten.
    let failure = (
        SpineId(0),
        SpineFailure::blackhole(LeafId(0), LeafId(1), 1.0),
    );
    let horizon = Time::from_secs(15);
    // Only rack0→rack1 traffic so exposure is guaranteed.
    let mk_flows = || {
        let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.3, None, SimRng::new(5));
        let mut v = Vec::new();
        while v.len() < 60 {
            let f = gen.next_flow();
            if topo.host_leaf(f.src) == LeafId(0) && topo.host_leaf(f.dst) == LeafId(1) {
                v.push(f);
            }
        }
        // Compress arrivals.
        for (i, f) in v.iter_mut().enumerate() {
            f.start = Time::from_us(300 * i as u64);
        }
        v
    };
    let run_bh = |scheme: Scheme| {
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(2));
        sim.set_spine_failure(failure.0, failure.1);
        sim.add_flows(mk_flows());
        sim.run_to_completion(horizon);
        sim.records().iter().filter(|r| r.finish.is_none()).count()
    };
    assert!(run_bh(Scheme::Ecmp) > 0, "ECMP must strand flows");
    assert_eq!(
        run_bh(Scheme::Hermes(HermesParams::from_topology(&topo))),
        0,
        "Hermes must finish everything despite the blackhole"
    );
}

#[test]
fn asymmetry_congestion_awareness_beats_oblivious_spray() {
    // One path degraded 10G→1G: equal-weight spraying is capped by the
    // slow path (congestion mismatch); Hermes senses and avoids it.
    let mut topo = Topology::leaf_spine(
        2,
        4,
        4,
        LinkCfg::new(10_000_000_000, Time::from_us(5)),
        LinkCfg::new(10_000_000_000, Time::from_us(10)),
    );
    let healthy = topo.total_uplink_bps();
    topo.degrade_link(LeafId(0), SpineId(0), 1_000_000_000);
    topo.degrade_link(LeafId(1), SpineId(0), 1_000_000_000);
    let horizon = Time::from_secs(20);
    let (spray, _) = run(
        &topo,
        Scheme::presto(),
        0.5,
        120,
        Some(healthy),
        None,
        horizon,
    );
    let (hermes, _) = run(
        &topo,
        Scheme::Hermes(HermesParams::from_topology(&topo)),
        0.5,
        120,
        Some(healthy),
        None,
        horizon,
    );
    assert!(
        hermes < spray,
        "hermes {hermes:.6}s must beat equal-weight spray {spray:.6}s under asymmetry"
    );
}

#[test]
fn hermes_reroute_counters_move_under_congestion() {
    // Sanity that Algorithm 2's congested branch actually fires in a
    // loaded asymmetric fabric.
    let mut topo = Topology::sim_baseline();
    let mut rng = SimRng::new(0xA5);
    topo.degrade_random_links(0.2, 2_000_000_000, &mut rng);
    let healthy = Topology::sim_baseline().total_uplink_bps();
    let mut gen = FlowGen::new(
        &topo,
        FlowSizeDist::data_mining(),
        0.7,
        Some(healthy),
        SimRng::new(4),
    );
    let params = HermesParams::from_topology(&topo);
    let mut sim =
        Simulation::new(SimConfig::new(topo.clone(), Scheme::Hermes(params)).with_seed(3));
    sim.add_flows(gen.schedule(120));
    sim.run_to_completion(Time::from_secs(30));
    let (reroutes, initial, probes): (u64, u64, u64) = sim
        .hermes_racks()
        .iter()
        .map(|r| {
            let r = r.borrow();
            (r.stat_reroutes, r.stat_initial, r.stat_probes)
        })
        .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
    assert!(initial >= 120, "every flow gets an initial placement");
    assert!(probes > 1000, "agents must keep probing");
    assert!(
        reroutes > 0,
        "congested-path rerouting must fire on a loaded asymmetric fabric"
    );
}

#[test]
fn full_pipeline_determinism() {
    let topo = Topology::testbed();
    let go = || {
        let mut gen = FlowGen::new(
            &topo,
            FlowSizeDist::data_mining(),
            0.4,
            None,
            SimRng::new(8),
        );
        let mut sim = Simulation::new(
            SimConfig::new(
                topo.clone(),
                Scheme::Hermes(HermesParams::paper_testbed(&topo)),
            )
            .with_seed(21),
        );
        sim.add_flows(gen.schedule(40));
        sim.run_to_completion(Time::from_secs(60));
        (
            sim.stats.events,
            sim.records()
                .iter()
                .map(|r| r.finish.map(hermes_sim::Time::as_ns))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(go(), go());
}
