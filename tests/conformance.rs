//! Tier-1 conformance: the small scenario grid under `tests/scenarios/`
//! (symmetric, asymmetric, blackhole, random-drop, plus the
//! workload-diversity regimes — ring-allreduce collective, incast
//! burst, elephant/mice mix — × hermes/conga/ecmp × 3 seeds), run in
//! parallel and held to all five checker classes — physical
//! invariants, golden event-trace digests, the paper's FCT-ratio
//! envelopes, ring-step conservation, and the incast goodput floor.
//! The extended grid (8×8 fabric, wider LB field) runs via `cargo run
//! -p xtask -- conformance`; goldens regenerate via `cargo run -p
//! xtask -- bless`. See DESIGN.md §10 and §15.

use std::path::{Path, PathBuf};

use hermes_testkit::{run_conformance, run_self_test, self_test_passed, CheckClass};

fn scenario_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios")
}

#[test]
fn small_grid_passes_all_checker_classes() {
    let report = run_conformance(&scenario_dir(), 0).expect("scenario grid runs");
    // The ISSUE's floor: six regimes (four failure regimes plus the
    // workload-diversity scenarios) × at least three LBs × at least
    // three seeds.
    assert!(report.scenarios.len() >= 6, "expected the six-regime grid");
    for name in ["ring_allreduce", "incast", "elephant_mice"] {
        assert!(
            report.scenarios.iter().any(|s| s.name == name),
            "workload-diversity scenario `{name}` missing from the grid"
        );
    }
    let combos: usize = report
        .scenarios
        .iter()
        .map(|s| {
            assert!(s.seeds.len() >= 3, "{}: fewer than 3 seeds", s.name);
            assert!(s.lbs.len() >= 3, "{}: fewer than 3 LBs", s.name);
            assert!(s.pin_digests, "{}: tier-1 scenarios pin digests", s.name);
            s.lbs.len()
        })
        .sum();
    assert!(
        combos >= 18,
        "expected a >=18 (scenario, lb) grid, got {combos}"
    );
    assert_eq!(
        report.cells(),
        report
            .scenarios
            .iter()
            .map(|s| s.lbs.len() * s.seeds.len())
            .sum::<usize>()
    );
    assert!(
        report.passed(),
        "conformance failures:\n{}",
        report
            .failures
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn grid_is_invariant_to_thread_count() {
    // The executor must produce identical evidence no matter how the
    // cells are scheduled: re-run one scenario's grid at 1 and 4
    // threads and compare digests cell-by-cell.
    let specs: Vec<_> = hermes_testkit::load_dir(&scenario_dir())
        .expect("scenarios load")
        .into_iter()
        .filter(|s| s.name == "symmetric")
        .collect();
    assert_eq!(specs.len(), 1);
    let serial = hermes_testkit::run_grid(&specs, 1).expect("serial");
    let parallel = hermes_testkit::run_grid(&specs, 4).expect("parallel");
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.result.digest, b.result.digest);
        assert_eq!(a.result.events, b.result.events);
    }
}

#[test]
fn checker_self_test_trips_every_class() {
    // A suite that cannot fail checks nothing: each deliberately-broken
    // fixture must trip exactly the checker class it targets.
    let cases = run_self_test().expect("fixtures run");
    assert!(self_test_passed(&cases));
    for class in [
        CheckClass::Invariant,
        CheckClass::Digest,
        CheckClass::Envelope,
        CheckClass::RingStep,
        CheckClass::IncastFloor,
    ] {
        assert!(
            cases.iter().any(|c| c.expect == class),
            "no fixture covers {class:?}"
        );
    }
}
