//! Tier-1 telemetry suite: the trace layer must tell the paper's
//! failure-recovery story (fig. 17) deterministically, without
//! perturbing the simulation it observes.
//!
//! Every test is a no-op unless the workspace `telemetry` feature is
//! on (`cargo test --features telemetry --test telemetry`); the plain
//! build keeps only the compiled-out shims, so there is nothing to
//! exercise.

use std::path::PathBuf;

use hermes_bench::{run_trace_point, trace_point, CLEAR, ONSET};
use hermes_core::HermesParams;
use hermes_net::{FaultPlan, LeafId, SpineId, Topology};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_telemetry::{DropReason, PathClass, Record, RerouteVerdict};
use hermes_testkit::load_goldens;
use hermes_testkit::ScenarioSpec;
use hermes_workload::{FlowGen, FlowSizeDist};

fn scenario_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios")
}

/// The fig17-style transient: blackhole onset → paths declared Failed →
/// reroutes avoid the hole → probation probing → re-admission. The
/// trace must carry that narrative in order.
#[test]
fn fig17_trace_tells_the_failure_story() {
    if !hermes_telemetry::compiled() {
        return;
    }
    let out = run_trace_point(trace_point("fig17_mini").expect("registered point"));
    assert_eq!(out.shed, 0, "sink must hold the whole mini trace");
    let evs = &out.events;

    // 1. The fault plan surfaces: blackhole installed at onset,
    //    cleared at t2.
    let onset_ev = evs
        .iter()
        .find(|e| {
            matches!(
                e.record,
                Record::FaultApplied {
                    kind: "set_spine_failure"
                }
            )
        })
        .expect("blackhole onset recorded");
    assert_eq!(onset_ev.at, ONSET);
    let clear_ev = evs
        .iter()
        .find(|e| {
            matches!(
                e.record,
                Record::FaultApplied {
                    kind: "clear_spine_failure"
                }
            )
        })
        .expect("blackhole clearance recorded");
    assert_eq!(clear_ev.at, CLEAR);

    // 2. Sensing: rack 0 declares the blackholed path (spine 0 toward
    //    rack 3) Failed shortly after onset — three timeouts, so
    //    milliseconds, not the 300 ms fault window.
    let failed = evs
        .iter()
        .find(|e| {
            matches!(
                e.record,
                Record::PathTransition {
                    leaf: 0,
                    dst_leaf: 3,
                    path: 0,
                    to: PathClass::Failed,
                    ..
                }
            )
        })
        .expect("failed transition for the blackholed path");
    assert!(failed.at > ONSET, "failure sensed only after onset");
    assert!(
        failed.at < ONSET + Time::from_ms(100),
        "timeout-driven detection must beat the fault window (sensed at {})",
        failed.at
    );

    // 3. While the path is down, every placement toward rack 3 avoids
    //    it: no moved-verdict reroute lands on path 0 between the
    //    Failed transition and the clearance.
    let mut moved_toward_hole = 0u32;
    for e in evs {
        if e.at <= failed.at || e.at >= CLEAR {
            continue;
        }
        if let Record::Reroute {
            dst_leaf: 3,
            to_path,
            verdict,
            ..
        } = e.record
        {
            if verdict.moved() {
                moved_toward_hole += u32::from(to_path == 0);
            }
        }
    }
    assert_eq!(
        moved_toward_hole, 0,
        "no reroute may re-enter the failed path while it is down"
    );
    // …and some flows actually escaped the hole (failovers happened).
    assert!(
        evs.iter().any(|e| matches!(
            e.record,
            Record::Reroute {
                dst_leaf: 3,
                verdict: RerouteVerdict::Failover,
                ..
            }
        )),
        "flows stranded on the blackholed path must fail over"
    );
    // The blackhole itself is visible as drop records.
    assert!(
        evs.iter()
            .any(|e| matches!(e.record, Record::Drop { path: 0, .. } if e.at > ONSET)),
        "blackholed packets surface as drop records"
    );

    // 4. Recovery: after the quiet period the path enters Probation
    //    (probes only), then gets re-admitted (Probation → Good/Gray).
    let probation = evs
        .iter()
        .find(|e| {
            e.at > failed.at
                && matches!(
                    e.record,
                    Record::PathTransition {
                        leaf: 0,
                        dst_leaf: 3,
                        path: 0,
                        to: PathClass::Probation,
                        ..
                    }
                )
        })
        .expect("failed path must enter probation");
    let readmit = evs
        .iter()
        .find(|e| {
            e.at > probation.at
                && matches!(
                    e.record,
                    Record::PathTransition {
                        leaf: 0,
                        dst_leaf: 3,
                        path: 0,
                        from: PathClass::Probation,
                        to: PathClass::Good | PathClass::Gray,
                        ..
                    }
                )
        })
        .expect("probation must end in re-admission");
    assert!(
        readmit.at > CLEAR,
        "re-admission only after the fault actually cleared (at {})",
        readmit.at
    );

    // 5. The supporting instrumentation is present: transport window
    //    snapshots and cadence queue samples.
    assert!(evs
        .iter()
        .any(|e| matches!(e.record, Record::CwndUpdate { .. })));
    assert!(evs
        .iter()
        .any(|e| matches!(e.record, Record::QueueSample { .. })));

    // 6. The trace is well-formed: seq dense from 0, time monotone.
    for (i, e) in evs.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "seq must be dense (nothing shed)");
    }
    for w in evs.windows(2) {
        assert!(w[1].at >= w[0].at);
    }
}

/// The chaos engine's gray-failure actions surface in the trace — and
/// observing them costs nothing: the same run with the sink off
/// produces the identical trace digest (A/B digest neutrality).
#[test]
fn gray_failure_faults_are_traced_and_digest_neutral() {
    if !hermes_telemetry::compiled() {
        return;
    }
    let run = || {
        let topo = Topology::sim_baseline();
        let scheme = Scheme::Hermes(HermesParams::from_topology(&topo));
        let plan = FaultPlan::new()
            .flow_blackhole_window(SpineId(5), 0.6, Time::from_ms(3), Time::from_ms(12))
            .ecn_mute_window(SpineId(2), Time::from_ms(2), Time::from_ms(14));
        let mut sim = Simulation::new(
            SimConfig::new(topo.clone(), scheme)
                .with_seed(3)
                .with_fault_plan(plan),
        );
        let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(9));
        let mut flows = Vec::new();
        while flows.len() < 40 {
            let f = gen.next_flow();
            if topo.host_leaf(f.src) == LeafId(0) && topo.host_leaf(f.dst) == LeafId(7) {
                flows.push(f);
            }
        }
        for (i, f) in flows.iter_mut().enumerate() {
            f.start = Time::from_us(400 * i as u64);
        }
        sim.add_flows(flows);
        sim.run_to_completion(Time::from_secs(5));
        sim.trace_digest()
    };

    // A: sink off — the baseline digest nothing may perturb.
    hermes_telemetry::uninstall();
    let base = run();

    // B: sink on — same digest, plus the gray-failure narrative.
    hermes_telemetry::install(hermes_telemetry::SinkConfig::default());
    let traced = run();
    let evs = hermes_telemetry::drain();
    hermes_telemetry::uninstall();
    assert_eq!(
        traced, base,
        "installing the telemetry sink perturbed the simulation"
    );
    for want in ["flow_blackhole", "ecn_mute", "ecn_unmute"] {
        assert!(
            evs.iter()
                .any(|e| matches!(e.record, Record::FaultApplied { kind } if kind == want)),
            "fault action `{want}` must surface as a FaultApplied record"
        );
    }
    assert!(
        evs.iter().any(|e| matches!(
            e.record,
            Record::Drop {
                reason: DropReason::FlowBlackhole,
                ..
            }
        )),
        "victim-flow packets must surface as flow_blackhole drops"
    );
}

/// Same seed ⇒ byte-identical exports: the JSONL/CSV a trace point
/// writes are a pure function of (config, seed).
#[test]
fn fig17_trace_is_byte_identical_across_runs() {
    if !hermes_telemetry::compiled() {
        return;
    }
    let p = trace_point("fig17_mini").expect("registered point");
    let a = run_trace_point(p);
    let b = run_trace_point(p);
    assert_eq!(a.digest, b.digest, "sim digests must match");
    assert_eq!(a.jsonl, b.jsonl, "event JSONL must be byte-identical");
    assert_eq!(a.csv, b.csv, "metrics CSV must be byte-identical");
}

/// Differential off/on check: with the sink installed and recording,
/// pinned conformance cells must still hit their committed golden
/// digests — the digests were blessed on a telemetry-off build, so any
/// telemetry-induced perturbation (an extra event, an RNG draw, a
/// sensing tick) shows up as a mismatch here.
#[test]
fn telemetry_on_preserves_conformance_digests() {
    if !hermes_telemetry::compiled() {
        return;
    }
    let dir = scenario_dir();
    let specs = hermes_testkit::load_dir(&dir).expect("tier-1 scenarios load");
    let goldens = load_goldens(&dir).expect("committed digests.toml");
    hermes_telemetry::install(hermes_telemetry::SinkConfig::default());
    let mut cells = 0;
    for name in ["symmetric", "blackhole", "random_drop"] {
        let spec: &ScenarioSpec = specs
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("scenario `{name}` exists"));
        let hermes_idx = spec
            .lbs
            .iter()
            .position(|lb| lb.name == "hermes")
            .expect("every pinned scenario runs hermes");
        for seed in [1u64, 2] {
            let cfg = spec.materialize(hermes_idx, seed).expect("materializes");
            let det = hermes_bench::run_point_detailed(&cfg, spec.goodput_interval);
            let key = spec.digest_key(hermes_idx, seed);
            let want = *goldens
                .get(&key)
                .unwrap_or_else(|| panic!("golden digest for {key}"));
            assert_eq!(
                det.digest, want,
                "{key}: telemetry-on digest diverged from the committed golden"
            );
            cells += 1;
        }
    }
    assert_eq!(cells, 6);
    // The sink really was live: the cells above produced events.
    assert!(
        !hermes_telemetry::drain().is_empty(),
        "sink must have recorded the runs it observed"
    );
    hermes_telemetry::uninstall();
}
