#!/usr/bin/env bash
# Regenerate every EXPERIMENTS.md table: build the bench binaries once,
# run each, and collect one log per figure under bench_results/.
#
# Per-point wall time is reported by the binaries themselves
# (std::time::Instant in crates/bench/src/grid.rs), so no external
# `time` wrapper is needed, and both stdout (tables) and stderr
# (per-point progress) land in the same .txt — no stray .err files.
#
# Usage:
#   scripts/run_benches.sh [outdir]        # default: bench_results
#   HERMES_SCALE=4 HERMES_RUNS=3 scripts/run_benches.sh
#
# Offline note: the build environment vendors all dependencies in-tree;
# add --offline to the cargo invocations if the registry is unreachable.

set -euo pipefail
cd "$(dirname "$0")/.."

outdir=${1:-bench_results}
mkdir -p "$outdir"

# Fail fast on a determinism/concurrency violation (DESIGN.md §13)
# before spending wall-clock on the full sweep.
cargo run -q -p xtask -- analyze

cargo build --release -p hermes-bench

for src in crates/bench/src/bin/*.rs; do
    bin=$(basename "$src" .rs)
    case "$bin" in
        autotune) continue ;; # interactive parameter search, not a figure
    esac
    # Note: fig17_transient_recovery additionally asserts same-seed
    # replay determinism internally, so a digest mismatch fails the
    # sweep here rather than passing silently.
    echo "== $bin =="
    if ! cargo run --release -q -p hermes-bench --bin "$bin" \
            >"$outdir/$bin.txt" 2>&1; then
        echo "FAILED: $bin (see $outdir/$bin.txt)" >&2
        exit 1
    fi
    tail -n 3 "$outdir/$bin.txt"
done

echo "done: results in $outdir/"
