//! Quickstart: run Hermes against ECMP on the paper's 8×8 leaf-spine
//! fabric and print the FCT comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hermes_core::HermesParams;
use hermes_net::Topology;
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_workload::{summarize, FlowGen, FlowSizeDist};

fn main() {
    // 1. The fabric: 8 leaves × 8 spines, 128 hosts, 10 Gbps links —
    //    the paper's large-simulation baseline.
    let topo = Topology::sim_baseline();

    // 2. A workload: web-search flow sizes, Poisson arrivals at 60%
    //    offered load, between random hosts under different racks.
    let make_flows = || {
        let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.6, None, SimRng::new(7));
        gen.schedule(400)
    };

    // 3. Two schemes: production ECMP vs. Hermes with the paper's
    //    Table 4 parameters derived from the topology.
    for (name, scheme) in [
        ("ecmp", Scheme::Ecmp),
        ("hermes", Scheme::Hermes(HermesParams::from_topology(&topo))),
    ] {
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(1));
        sim.add_flows(make_flows());
        sim.run_to_completion(Time::from_secs(10));
        let s = summarize(sim.records(), sim.now());
        println!(
            "{name:7}  avg FCT {:7.3} ms   small avg {:6.3} ms   small p99 {:7.3} ms   ({} flows, {} unfinished)",
            s.avg * 1e3,
            s.avg_small * 1e3,
            s.p99_small * 1e3,
            s.n,
            s.unfinished
        );
    }
    println!("\nSame workload, same seed — only the load balancer differs.");
}
