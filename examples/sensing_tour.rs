//! A guided tour of Hermes' sensing layer, without a network: feed a
//! path-state table the signals a hypervisor would observe and watch
//! Algorithm 1 classify (and the failure detectors fire).
//!
//! ```sh
//! cargo run --example sensing_tour
//! ```

use hermes_core::{HermesParams, PathState};
use hermes_net::Topology;
use hermes_sim::Time;

fn show(label: &str, st: &mut PathState, p: &HermesParams, now: Time) {
    println!(
        "{label:46} → {:?}  (f_ECN={:.2}, t_RTT={})",
        st.characterize(p, now),
        st.f_ecn(),
        st.t_rtt().map_or("—".to_string(), |t| t.to_string()),
    );
}

fn main() {
    let topo = Topology::sim_baseline();
    let p = HermesParams::from_topology(&topo);
    println!(
        "Thresholds from the topology (§3.3): T_RTT_low={}, T_RTT_high={}, T_ECN={:.0}%\n",
        p.t_rtt_low,
        p.t_rtt_high,
        p.t_ecn * 100.0
    );
    let now = Time::from_ms(1);

    // 1. A freshly booted path: nothing known.
    let mut unknown = PathState::default();
    show("never sampled", &mut unknown, &p, now);

    // 2. Low RTT, no marks — a good path.
    let mut good = PathState::default();
    for _ in 0..50 {
        good.sample(Some(p.t_rtt_low - Time::from_us(15)), false, &p, now);
    }
    show("low RTT + low ECN", &mut good, &p, now);

    // 3. High RTT but no marks — could just be stack latency: gray.
    let mut gray1 = PathState::default();
    for _ in 0..50 {
        gray1.sample(Some(p.t_rtt_high + Time::from_us(40)), false, &p, now);
    }
    show("high RTT + low ECN (stack latency?)", &mut gray1, &p, now);

    // 4. Marked ECN but low RTT — not enough samples to be sure: gray.
    let mut gray2 = PathState::default();
    for _ in 0..50 {
        gray2.sample(Some(p.t_rtt_low - Time::from_us(15)), true, &p, now);
    }
    show("low RTT + high ECN (few samples?)", &mut gray2, &p, now);

    // 5. Both high — congested.
    let mut congested = PathState::default();
    for _ in 0..50 {
        congested.sample(Some(p.t_rtt_high + Time::from_us(40)), true, &p, now);
    }
    show("high RTT + high ECN", &mut congested, &p, now);

    // 6. Blackhole: timeouts with nothing ACKed in between.
    let mut hole = PathState::default();
    hole.on_timeout(&p, now);
    hole.on_timeout(&p, now);
    show("2 timeouts, nothing ACKed", &mut hole, &p, now);
    hole.on_timeout(&p, now);
    show("3rd timeout (blackhole rule)", &mut hole, &p, now);

    // 7. Silent random drops: healthy-looking path, 3% retransmissions.
    let mut lossy = PathState::default();
    let mut t = now;
    for i in 0..600u32 {
        t = now + Time::from_us(20 * i as u64);
        lossy.on_sent(&p, t);
        if i % 33 == 0 {
            lossy.on_retransmit(&p, t);
        }
        lossy.sample(Some(p.t_rtt_low - Time::from_us(15)), false, &p, t);
    }
    let after = t + p.retx_window;
    lossy.on_sent(&p, after);
    lossy.sample(Some(p.t_rtt_low - Time::from_us(15)), false, &p, after);
    show(
        "3% retransmits on an UNcongested path",
        &mut lossy,
        &p,
        after,
    );

    // 8. Recovery: after a quiet period the failed path enters
    // probation (the probe planner checks `in_probation`, as the
    // runtime does) and K clean probes re-admit it (DESIGN.md §9).
    let quiet = now + p.failure_quiet_period;
    assert!(hole.in_probation(&p, quiet), "quiet period has elapsed");
    for i in 0..p.recovery_probe_count as u64 {
        hole.sample(
            Some(p.t_rtt_low - Time::from_us(15)),
            false,
            &p,
            quiet + Time::from_us(500 * i),
        );
    }
    show(
        "quiet period + 3 clean probes (re-admitted)",
        &mut hole,
        &p,
        quiet + Time::from_ms(2),
    );

    println!(
        "\nFailure classes stay sticky until a quiet period plus probation probes\n\
         re-admit the path; everything else re-evaluates per packet."
    );
}
