//! Failure-resilience demo: a spine switch develops a packet blackhole
//! mid-run; watch Hermes detect it from timeouts and evacuate, while
//! ECMP strands every flow hashed onto the dead paths.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use hermes_core::HermesParams;
use hermes_net::{LeafId, SpineFailure, SpineId, Topology};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_workload::{FlowGen, FlowSizeDist};

fn main() {
    let topo = Topology::sim_baseline();
    // Every src–dst pair from rack 0 to rack 7 blackholes at spine 5.
    let hole = SpineFailure::blackhole(LeafId(0), LeafId(7), 1.0);

    for (name, scheme) in [
        ("ecmp", Scheme::Ecmp),
        ("hermes", Scheme::Hermes(HermesParams::from_topology(&topo))),
    ] {
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(3));
        sim.set_spine_failure(SpineId(5), hole);
        let mut gen = FlowGen::new(&topo, FlowSizeDist::web_search(), 0.4, None, SimRng::new(9));
        // Keep only rack0 → rack7 flows so every flow is exposed to the
        // blackhole risk.
        let mut flows = Vec::new();
        while flows.len() < 120 {
            let f = gen.next_flow();
            if topo.host_leaf(f.src) == LeafId(0) && topo.host_leaf(f.dst) == LeafId(7) {
                flows.push(f);
            }
        }
        // Re-time them into a steady 50 ms arrival window.
        for (i, f) in flows.iter_mut().enumerate() {
            f.start = Time::from_us(400 * i as u64);
        }
        sim.add_flows(flows);
        sim.run_to_completion(Time::from_secs(5));
        let unfinished = sim.records().iter().filter(|r| r.finish.is_none()).count();
        let finished_avg: f64 = {
            let done: Vec<f64> = sim
                .records()
                .iter()
                .filter_map(|r| r.finish.map(|f| (f - r.start).as_secs_f64()))
                .collect();
            done.iter().sum::<f64>() / done.len().max(1) as f64
        };
        print!(
            "{name:7}  unfinished {unfinished:3}/120   avg FCT of finished {:.2} ms",
            finished_avg * 1e3
        );
        if name == "hermes" {
            let sensing = &sim.hermes_racks()[0];
            let failed_paths = (0..8)
                .filter(|&s| {
                    sensing
                        .borrow()
                        .path_state(LeafId(7), hermes_net::PathId(s))
                        .failed()
                })
                .count();
            print!("   (rack 0 marked {failed_paths} path(s) to rack 7 as failed)");
        }
        println!();
    }
    println!("\nHermes' blackhole rule: 3 RTOs on a path with nothing ACKed → failed,");
    println!("and every flow — current and future — avoids it (§3.1.2).");
}
