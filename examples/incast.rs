//! Microburst (incast) demo: partition–aggregate queries under
//! different load balancers.
//!
//! §6 of the paper is candid that Hermes "takes at least one RTT to
//! sense and react to uncertainties, and thus, it does not directly
//! handle microbursts" — DRILL's per-packet switch-local decisions are
//! built for exactly that. This example measures query completion time
//! (the slowest of 32 synchronized replies) under ECMP, DRILL, and
//! Hermes.
//!
//! ```sh
//! cargo run --release --example incast
//! ```

use hermes_core::HermesParams;
use hermes_net::Topology;
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_workload::{query_completion, IncastGen};

fn main() {
    let topo = Topology::sim_baseline();
    println!("32-way incast, 64 KB replies, one query per ms, 40 queries:\n");
    for (name, scheme) in [
        ("ecmp", Scheme::Ecmp),
        ("drill", Scheme::Drill { samples: 2 }),
        ("hermes", Scheme::Hermes(HermesParams::from_topology(&topo))),
    ] {
        let mut gen = IncastGen::new(&topo, 32, 64_000, Time::from_ms(1), SimRng::new(11));
        let (queries, specs) = gen.schedule(40);
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(5));
        sim.add_flows(specs);
        sim.run_to_completion(Time::from_secs(5));
        let mut qcts: Vec<f64> = queries
            .iter()
            .filter_map(|q| query_completion(q, sim.records()))
            .map(|t| t.as_secs_f64() * 1e3)
            .collect();
        qcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let avg = qcts.iter().sum::<f64>() / qcts.len() as f64;
        let p99 = qcts[(qcts.len() as f64 * 0.99) as usize - 1];
        println!(
            "{name:7}  avg QCT {avg:6.3} ms   p99 QCT {p99:6.3} ms   ({} of 40 queries completed)",
            qcts.len()
        );
    }
    println!("\nQCT is gated by the slowest reply, so a single unlucky path choice");
    println!("dominates; per-packet local balancing (DRILL) absorbs the burst, while");
    println!("RTT-scale sensing (Hermes) cannot react within it — matching §6.");
}
