//! Asymmetry demo: degrade 20% of the fabric's leaf-spine links to
//! 2 Gbps and compare congestion-oblivious spraying, flowlet switching,
//! and Hermes on the smooth data-mining workload — the regime where
//! timely-yet-cautious rerouting shines (§5.3.2).
//!
//! ```sh
//! cargo run --release --example asymmetry
//! ```

use hermes_core::HermesParams;
use hermes_lb::CongaCfg;
use hermes_net::Topology;
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_workload::{summarize, FlowGen, FlowSizeDist};

fn main() {
    // The §5.3.2 asymmetric fabric.
    let mut topo = Topology::sim_baseline();
    let healthy_capacity = topo.total_uplink_bps();
    let mut rng = SimRng::new(0xA5);
    topo.degrade_random_links(0.2, 2_000_000_000, &mut rng);
    println!(
        "Fabric: 8x8 leaf-spine, 20% of uplinks degraded to 2 Gbps ({} of 64)",
        topo.up
            .iter()
            .flatten()
            .flatten()
            .filter(|l| l.rate_bps == 2_000_000_000)
            .count()
    );

    let schemes: Vec<(&str, Scheme)> = vec![
        ("presto* (weighted)", Scheme::presto_weighted()),
        ("conga", Scheme::Conga(CongaCfg::default())),
        ("hermes", Scheme::Hermes(HermesParams::from_topology(&topo))),
    ];
    println!("\ndata-mining workload at 70% load (of the healthy fabric):\n");
    for (name, scheme) in schemes {
        let mut gen = FlowGen::new(
            &topo,
            FlowSizeDist::data_mining(),
            0.7,
            Some(healthy_capacity),
            SimRng::new(17),
        );
        let mut sim = Simulation::new(SimConfig::new(topo.clone(), scheme).with_seed(2));
        sim.add_flows(gen.schedule(150));
        sim.run_to_completion(Time::from_secs(20));
        let s = summarize(sim.records(), sim.now());
        println!(
            "{name:20}  avg FCT {:8.2} ms   large-flow avg {:8.2} ms   unfinished {}",
            s.avg * 1e3,
            s.avg_large * 1e3,
            s.unfinished
        );
    }
    println!("\nCongestion-oblivious spray suffers congestion mismatch on the slow");
    println!("links; flowlet schemes wait for gaps that smooth traffic rarely opens;");
    println!("Hermes senses the imbalance and reroutes long flows mid-flight.");
}
