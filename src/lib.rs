//! # hermes-repro — reproduction of "Resilient Datacenter Load
//! Balancing in the Wild" (SIGCOMM 2017)
//!
//! This root crate hosts the runnable examples and cross-crate
//! integration tests; the implementation lives in the workspace crates:
//!
//! * [`hermes_sim`] — deterministic discrete-event engine,
//! * [`hermes_net`] — packet-level leaf-spine fabric with ECN and
//!   switch-failure injection,
//! * [`hermes_transport`] — DCTCP / TCP NewReno,
//! * [`hermes_lb`] — ECMP, DRB, Presto*, FlowBender, CLOVE-ECN,
//!   LetFlow, DRILL, CONGA,
//! * [`hermes_core`] — **Hermes** itself (sensing, probing, rerouting),
//! * [`hermes_workload`] — web-search/data-mining workloads + metrics,
//! * [`hermes_runtime`] — the experiment harness gluing it all.
//!
//! See `README.md` for a tour and `DESIGN.md` for the architecture and
//! the per-experiment index.

pub use hermes_core as core;
pub use hermes_lb as lb;
pub use hermes_net as net;
pub use hermes_runtime as runtime;
pub use hermes_sim as sim;
pub use hermes_transport as transport;
pub use hermes_workload as workload;
