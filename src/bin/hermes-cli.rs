//! `hermes-cli` — run one load-balancing experiment from the command
//! line and print the FCT summary.
//!
//! ```text
//! USAGE:
//!   hermes-cli [--topo testbed|baseline|asym] [--scheme NAME]
//!              [--workload web|dm] [--load F] [--flows N] [--seed N]
//!              [--drop SPINE:RATE] [--blackhole SPINE:SRC:DST:FRAC]
//!              [--cut LEAF:SPINE] [--transport dctcp|tcp] [--runs N]
//!
//! SCHEMES:
//!   ecmp drb presto presto-w flowbender clove letflow drill conga hermes
//! ```
//!
//! Examples:
//! ```sh
//! cargo run --release --bin hermes-cli -- --scheme hermes --load 0.6
//! cargo run --release --bin hermes-cli -- --scheme ecmp --topo asym \
//!     --workload dm --load 0.7 --flows 300
//! cargo run --release --bin hermes-cli -- --scheme conga \
//!     --drop 3:0.02 --load 0.5
//! ```

use hermes_core::HermesParams;
use hermes_lb::{CloveCfg, CongaCfg, FlowBenderCfg};
use hermes_net::{LeafId, SpineFailure, SpineId, Topology};
use hermes_runtime::{Scheme, SimConfig, Simulation};
use hermes_sim::{SimRng, Time};
use hermes_transport::TransportCfg;
use hermes_workload::{summarize, FctSummary, FlowGen, FlowSizeDist};

struct Args {
    topo: String,
    scheme: String,
    workload: String,
    load: f64,
    flows: usize,
    seed: u64,
    runs: u64,
    transport: String,
    drops: Vec<(u16, f64)>,
    blackholes: Vec<(u16, u16, u16, f64)>,
    cuts: Vec<(u16, u16)>,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    eprintln!("usage: hermes-cli [--topo testbed|baseline|asym] [--scheme NAME]");
    eprintln!("                  [--workload web|dm] [--load F] [--flows N] [--seed N]");
    eprintln!("                  [--drop SPINE:RATE] [--blackhole SPINE:SRC:DST:FRAC]");
    eprintln!("                  [--cut LEAF:SPINE] [--transport dctcp|tcp] [--runs N]");
    eprintln!("schemes: ecmp drb presto presto-w flowbender clove letflow drill conga hermes");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        topo: "baseline".into(),
        scheme: "hermes".into(),
        workload: "web".into(),
        load: 0.6,
        flows: 500,
        seed: 1,
        runs: 1,
        transport: "dctcp".into(),
        drops: Vec::new(),
        blackholes: Vec::new(),
        cuts: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i - 1)
            .cloned()
            .unwrap_or_else(|| usage("missing value for flag"))
    };
    while i < argv.len() {
        let flag = argv[i].clone();
        i += 1;
        match flag.as_str() {
            "--topo" => args.topo = next(&mut i),
            "--scheme" => args.scheme = next(&mut i),
            "--workload" => args.workload = next(&mut i),
            "--load" => args.load = next(&mut i).parse().unwrap_or_else(|_| usage("bad --load")),
            "--flows" => {
                args.flows = next(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --flows"));
            }
            "--seed" => args.seed = next(&mut i).parse().unwrap_or_else(|_| usage("bad --seed")),
            "--runs" => args.runs = next(&mut i).parse().unwrap_or_else(|_| usage("bad --runs")),
            "--transport" => args.transport = next(&mut i),
            "--drop" => {
                let v = next(&mut i);
                let (s, r) = v.split_once(':').unwrap_or_else(|| usage("bad --drop"));
                args.drops.push((
                    s.parse().unwrap_or_else(|_| usage("bad --drop spine")),
                    r.parse().unwrap_or_else(|_| usage("bad --drop rate")),
                ));
            }
            "--blackhole" => {
                let v = next(&mut i);
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() != 4 {
                    usage("bad --blackhole (want SPINE:SRCLEAF:DSTLEAF:FRAC)");
                }
                args.blackholes.push((
                    parts[0].parse().unwrap_or_else(|_| usage("bad spine")),
                    parts[1].parse().unwrap_or_else(|_| usage("bad src leaf")),
                    parts[2].parse().unwrap_or_else(|_| usage("bad dst leaf")),
                    parts[3].parse().unwrap_or_else(|_| usage("bad fraction")),
                ));
            }
            "--cut" => {
                let v = next(&mut i);
                let (l, s) = v.split_once(':').unwrap_or_else(|| usage("bad --cut"));
                args.cuts.push((
                    l.parse().unwrap_or_else(|_| usage("bad leaf")),
                    s.parse().unwrap_or_else(|_| usage("bad spine")),
                ));
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn build_topo(a: &Args) -> (Topology, Option<u64>) {
    let mut topo = match a.topo.as_str() {
        "testbed" => Topology::testbed(),
        "baseline" => Topology::sim_baseline(),
        "asym" => {
            let mut t = Topology::sim_baseline();
            let mut rng = SimRng::new(0xA5);
            t.degrade_random_links(0.2, 2_000_000_000, &mut rng);
            t
        }
        other => usage(&format!("unknown topology {other}")),
    };
    let healthy = match a.topo.as_str() {
        "testbed" => Topology::testbed().total_uplink_bps(),
        _ => Topology::sim_baseline().total_uplink_bps(),
    };
    for &(l, s) in &a.cuts {
        topo.cut_link(LeafId(l), SpineId(s));
    }
    (topo, Some(healthy))
}

fn build_scheme(a: &Args, topo: &Topology) -> Scheme {
    match a.scheme.as_str() {
        "ecmp" => Scheme::Ecmp,
        "drb" => Scheme::Drb,
        "presto" => Scheme::presto(),
        "presto-w" => Scheme::presto_weighted(),
        "flowbender" => Scheme::FlowBender(FlowBenderCfg::default()),
        "clove" => Scheme::Clove(CloveCfg::default()),
        "letflow" => Scheme::LetFlow {
            flowlet_timeout: Time::from_us(150),
        },
        "drill" => Scheme::Drill { samples: 2 },
        "conga" => Scheme::Conga(CongaCfg::default()),
        "hermes" => {
            let params = if a.transport == "tcp" {
                HermesParams::for_tcp(topo)
            } else if a.topo == "testbed" {
                HermesParams::paper_testbed(topo)
            } else {
                HermesParams::from_topology(topo)
            };
            Scheme::Hermes(params)
        }
        other => usage(&format!("unknown scheme {other}")),
    }
}

fn print_summary(s: &FctSummary) {
    println!("flows               {}", s.n);
    println!(
        "unfinished          {} ({:.2}%)",
        s.unfinished,
        100.0 * s.unfinished_frac()
    );
    println!("avg FCT             {:.3} ms", s.avg * 1e3);
    println!(
        "p50 / p95 / p99     {:.3} / {:.3} / {:.3} ms",
        s.p50 * 1e3,
        s.p95 * 1e3,
        s.p99 * 1e3
    );
    println!(
        "small (<100KB) avg  {:.3} ms   p99 {:.3} ms   (n={})",
        s.avg_small * 1e3,
        s.p99_small * 1e3,
        s.n_small
    );
    println!(
        "large (>10MB)  avg  {:.3} ms   (n={})",
        s.avg_large * 1e3,
        s.n_large
    );
}

fn main() {
    let a = parse_args();
    let (topo, capacity) = build_topo(&a);
    let dist = match a.workload.as_str() {
        "web" => FlowSizeDist::web_search(),
        "dm" => FlowSizeDist::data_mining(),
        other => usage(&format!("unknown workload {other}")),
    };
    let transport = match a.transport.as_str() {
        "dctcp" => TransportCfg::dctcp(),
        "tcp" => TransportCfg::tcp(),
        other => usage(&format!("unknown transport {other}")),
    };
    println!(
        "topology={} scheme={} workload={} load={:.2} flows={} seed={} runs={}",
        a.topo,
        a.scheme,
        dist.name(),
        a.load,
        a.flows,
        a.seed,
        a.runs
    );
    let mut sums = Vec::new();
    for run in 0..a.runs {
        let seed = a.seed + run;
        let scheme = build_scheme(&a, &topo);
        let mut gen = FlowGen::new(
            &topo,
            dist.clone(),
            a.load,
            capacity,
            SimRng::new(seed).split(0x6E4),
        );
        let specs = gen.schedule(a.flows);
        let horizon = specs.last().unwrap().start + Time::from_secs(10);
        let mut sim = Simulation::new(
            SimConfig::new(topo.clone(), scheme)
                .with_seed(seed)
                .with_transport(transport),
        );
        for &(s, r) in &a.drops {
            sim.set_spine_failure(SpineId(s), SpineFailure::random_drops(r));
        }
        for &(sp, sl, dl, f) in &a.blackholes {
            sim.set_spine_failure(
                SpineId(sp),
                SpineFailure::blackhole(LeafId(sl), LeafId(dl), f),
            );
        }
        sim.add_flows(specs);
        sim.run_to_completion(horizon);
        sums.push(summarize(sim.records(), horizon));
        if a.runs > 1 {
            eprintln!("run {run}: avg {:.3} ms", sums.last().unwrap().avg * 1e3);
        }
    }
    // Component-wise mean over runs.
    let mut avg = sums[0];
    if sums.len() > 1 {
        let n = sums.len() as f64;
        avg.avg = sums.iter().map(|s| s.avg).sum::<f64>() / n;
        avg.p50 = sums.iter().map(|s| s.p50).sum::<f64>() / n;
        avg.p95 = sums.iter().map(|s| s.p95).sum::<f64>() / n;
        avg.p99 = sums.iter().map(|s| s.p99).sum::<f64>() / n;
        avg.avg_small = sums.iter().map(|s| s.avg_small).sum::<f64>() / n;
        avg.p99_small = sums.iter().map(|s| s.p99_small).sum::<f64>() / n;
        avg.avg_large = sums.iter().map(|s| s.avg_large).sum::<f64>() / n;
        avg.unfinished = sums.iter().map(|s| s.unfinished).sum::<usize>() / sums.len();
    }
    print_summary(&avg);
}
